//! The Theorem-9 optimized Bε-tree.
//!
//! Layout (see crate docs): every node is a device slot of `cap = 2F`
//! contiguous segments of `seg_bytes` each. Segment `j` of an internal node
//! holds the [`ChildDesc`] of child `j` — its address, its routing keys
//! ("we store the pivots of a node outside of that node — specifically in
//! the node's parent"), and the messages pending for its subtree, capped at
//! one segment. Segment `j` of a leaf holds a sorted subleaf of key-value
//! pairs.
//!
//! IO granularity is the whole point:
//!
//! * **queries** read exactly one segment per level
//!   ([`dam_cache::Pager::read_within`]) — an IO of `B/(2F)` bytes, affine
//!   cost `1 + αB/F`-ish per level (Theorem 9's query bound);
//! * **flushes and splits** read and write whole nodes — *one* IO of `B`
//!   bytes (the segments are contiguous on the device), affine cost
//!   `1 + αB`, amortized over the `Θ(B/F)` message bytes moved (Theorem 9's
//!   insert bound).
//!
//! Deviations from the paper, both documented in DESIGN.md: balance is
//! maintained by bottom-up splits rather than weight-balanced subtree
//! rebuilds (same asymptotics, different constants on the rebalance term),
//! and deletions leave sparse leaves rather than triggering merges.

use crate::node::{
    apply_msgs_to_entries, buffer_insert, buffer_merge, decode_alloc_state, encode_alloc_state,
};
use dam_cache::{Pager, PagerError};

const OPT_SUPERBLOCK_MAGIC: u32 = 0x4441_4D4F; // "DAMO"
const OPT_SUPERBLOCK_VERSION: u8 = 1;
use dam_kv::codec::{frame_into_slot, unframe, CodecError, Reader, Writer, FRAME_OVERHEAD};
use dam_kv::msg::{replay, LastWriteWins, MergeOperator, Message, Operation};
use dam_kv::{BatchOp, Dictionary, KvError, OpCost};
use dam_obs::Obs;
use dam_storage::SharedDevice;

const TAG_EMPTY: u8 = 0;
const TAG_SUBLEAF: u8 = 1;
const TAG_DESC: u8 = 2;

/// Serialized size of an empty subleaf segment (frame + tag + count).
const SUBLEAF_HEADER_BYTES: usize = FRAME_OVERHEAD + 1 + 4;

/// Configuration of the optimized tree.
pub struct OptConfig {
    /// Target fanout `F`. Nodes hold up to `2F` segments.
    pub fanout: usize,
    /// Segment size in bytes (≈ `B / 2F`). Queries read one segment per
    /// level.
    pub seg_bytes: usize,
    /// Buffer-pool budget in bytes.
    pub cache_bytes: u64,
    /// Upsert merge semantics.
    pub merge: Box<dyn MergeOperator>,
    /// Fill fraction for bulk-loaded subleaves.
    pub bulk_fill: f64,
}

impl OptConfig {
    /// Explicit configuration with last-write-wins upserts.
    pub fn new(fanout: usize, seg_bytes: usize, cache_bytes: u64) -> Self {
        OptConfig {
            fanout,
            seg_bytes,
            cache_bytes,
            merge: Box::new(LastWriteWins),
            bulk_fill: 0.8,
        }
    }

    /// Bytes reserved at device offset 0 for the superblock: large enough
    /// for the root descriptor (one segment) plus allocator state.
    pub fn superblock_bytes(&self) -> u64 {
        (self.seg_bytes as u64 + 1024).max(4096)
    }

    /// The Corollary-12 shape for a target node size: `F ≈ √(B/entry)`,
    /// `seg = B / 2F` (with a floor so a descriptor holding `2F` routing
    /// keys still has message room).
    pub fn balanced(node_bytes: usize, approx_entry_bytes: usize, cache_bytes: u64) -> Self {
        let entries = (node_bytes / approx_entry_bytes.max(1)).max(4);
        let fanout = ((entries as f64).sqrt().ceil() as usize).max(2);
        let seg = (node_bytes / (2 * fanout)).max(256);
        Self::new(fanout, seg, cache_bytes)
    }

    /// Segments per node slot.
    pub fn cap(&self) -> usize {
        2 * self.fanout
    }

    /// Node slot size in bytes.
    pub fn node_bytes(&self) -> usize {
        self.cap() * self.seg_bytes
    }
}

/// What a parent knows about a child: where it lives, how to route within
/// it, and the messages pending for its subtree. This *is* the on-disk
/// content of one internal segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildDesc {
    /// Base offset of the child's node slot.
    pub addr: u64,
    /// Whether the child is a leaf (its segments are subleaves).
    pub is_leaf: bool,
    /// The child's routing keys: segment `j` of the child covers keys in
    /// `[boundaries[j-1], boundaries[j])`. `used = boundaries.len() + 1`.
    pub boundaries: Vec<Vec<u8>>,
    /// Messages pending for the child's subtree, sorted by `(key, seq)`.
    pub msgs: Vec<Message>,
}

impl ChildDesc {
    /// Number of segments the child uses.
    pub fn used(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Which of the child's segments routes `key`.
    pub fn route(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    /// Conservative serialized size as a framed segment (message footprints
    /// are upper bounds).
    pub fn size(&self) -> usize {
        FRAME_OVERHEAD
            + 1
            + 8
            + 1
            + 4
            + self.boundaries.iter().map(|b| 4 + b.len()).sum::<usize>()
            + 4
            + self.msgs.iter().map(Message::footprint).sum::<usize>()
    }
}

/// One decoded segment.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Seg {
    Subleaf(Vec<(Vec<u8>, Vec<u8>)>),
    Desc(ChildDesc),
}

impl Seg {
    fn size(&self) -> usize {
        match self {
            Seg::Subleaf(entries) => {
                FRAME_OVERHEAD
                    + 1
                    + 4
                    + entries
                        .iter()
                        .map(|(k, v)| 8 + k.len() + v.len())
                        .sum::<usize>()
            }
            Seg::Desc(d) => d.size(),
        }
    }

    fn encode_into(&self, w: &mut Writer) {
        match self {
            Seg::Subleaf(entries) => {
                w.put_u8(TAG_SUBLEAF);
                w.put_u32(entries.len() as u32);
                for (k, v) in entries {
                    w.put_bytes(k);
                    w.put_bytes(v);
                }
            }
            Seg::Desc(d) => {
                w.put_u8(TAG_DESC);
                w.put_u64(d.addr);
                w.put_u8(d.is_leaf as u8);
                w.put_u32(d.boundaries.len() as u32);
                for b in &d.boundaries {
                    w.put_bytes(b);
                }
                w.put_u32(d.msgs.len() as u32);
                for m in &d.msgs {
                    m.encode(w);
                }
            }
        }
    }

    fn decode(buf: &[u8]) -> Result<Option<Seg>, CodecError> {
        let mut r = Reader::new(buf);
        Self::decode_from(&mut r)
    }

    /// Decode one segment from an open reader, leaving the reader positioned
    /// just past it.
    fn decode_from(r: &mut Reader<'_>) -> Result<Option<Seg>, CodecError> {
        match r.get_u8()? {
            TAG_EMPTY => Ok(None),
            TAG_SUBLEAF => {
                let n = r.get_u32()? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = r.get_bytes()?.to_vec();
                    let v = r.get_bytes()?.to_vec();
                    entries.push((k, v));
                }
                Ok(Some(Seg::Subleaf(entries)))
            }
            TAG_DESC => {
                let addr = r.get_u64()?;
                let is_leaf = r.get_u8()? != 0;
                let nb = r.get_u32()? as usize;
                let mut boundaries = Vec::with_capacity(nb);
                for _ in 0..nb {
                    boundaries.push(r.get_bytes()?.to_vec());
                }
                let nm = r.get_u32()? as usize;
                let mut msgs = Vec::with_capacity(nm);
                for _ in 0..nm {
                    msgs.push(Message::decode(r)?);
                }
                Ok(Some(Seg::Desc(ChildDesc {
                    addr,
                    is_leaf,
                    boundaries,
                    msgs,
                })))
            }
            _ => Err(CodecError::Invalid("unknown segment tag")),
        }
    }
}

fn map_pager(e: PagerError) -> KvError {
    KvError::Storage(e.to_string())
}

/// The optimized Bε-tree (see module docs).
pub struct OptBeTree {
    pager: Pager,
    fanout: usize,
    cap: usize,
    seg_bytes: usize,
    node_bytes: usize,
    merge: Box<dyn MergeOperator>,
    root: ChildDesc,
    height: u32,
    count: u64,
    next_seq: u64,
    last_cost: OpCost,
    obs: Option<Obs>,
}

impl OptBeTree {
    /// Create an empty tree on `device`.
    pub fn create(device: SharedDevice, cfg: OptConfig) -> Result<Self, KvError> {
        if cfg.fanout < 2 {
            return Err(KvError::Config("fanout must be at least 2".into()));
        }
        if cfg.seg_bytes < 64 {
            return Err(KvError::Config(format!(
                "seg_bytes {} too small",
                cfg.seg_bytes
            )));
        }
        if !(0.5..=1.0).contains(&cfg.bulk_fill) {
            return Err(KvError::Config("bulk_fill must be in [0.5, 1.0]".into()));
        }
        let cap = cfg.cap();
        let node_bytes = cfg.node_bytes();
        let mut pager = Pager::new(device, cfg.cache_bytes, cfg.superblock_bytes());
        let addr = pager.alloc(node_bytes as u64).map_err(map_pager)?;
        let mut tree = OptBeTree {
            pager,
            fanout: cfg.fanout,
            cap,
            seg_bytes: cfg.seg_bytes,
            node_bytes,
            merge: cfg.merge,
            root: ChildDesc {
                addr,
                is_leaf: true,
                boundaries: Vec::new(),
                msgs: Vec::new(),
            },
            height: 1,
            count: 0,
            next_seq: 1,
            last_cost: OpCost::default(),
            obs: None,
        };
        tree.write_whole(addr, &[Seg::Subleaf(Vec::new())])?;
        Ok(tree)
    }

    /// Node slot size (`B`).
    pub fn node_bytes(&self) -> usize {
        self.node_bytes
    }

    /// Segment size (the query IO unit, `≈ B/2F`).
    pub fn seg_bytes(&self) -> usize {
        self.seg_bytes
    }

    /// Target fanout `F`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree height in node levels (a lone leaf node = 1).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The pager (counters, flush, cache drops).
    pub fn pager(&mut self) -> &mut Pager {
        &mut self.pager
    }

    /// Write all dirty nodes.
    pub fn flush(&mut self) -> Result<(), KvError> {
        self.pager.flush().map_err(map_pager)
    }

    /// Checkpoint: flush dirty nodes, then durably write a superblock (the
    /// root descriptor — including any buffered root messages — plus tree
    /// metadata and allocator state) so [`OptBeTree::open`] can reconstruct
    /// the tree.
    pub fn persist(&mut self) -> Result<(), KvError> {
        self.flush()?;
        let reserved = (self.seg_bytes as u64 + 1024).max(4096);
        let mut w = Writer::with_capacity(reserved as usize);
        w.put_u32(OPT_SUPERBLOCK_MAGIC);
        w.put_u8(OPT_SUPERBLOCK_VERSION);
        w.put_u32(self.fanout as u32);
        w.put_u64(self.seg_bytes as u64);
        w.put_u32(self.height);
        w.put_u64(self.count);
        w.put_u64(self.next_seq);
        // Root descriptor (reuses the segment encoding).
        Seg::Desc(self.root.clone()).encode_into(&mut w);
        encode_alloc_state(&mut w, &self.pager);
        let payload = w.into_bytes();
        if (payload.len() + FRAME_OVERHEAD) as u64 > reserved {
            return Err(KvError::Config("superblock overflow".into()));
        }
        let image = frame_into_slot(&payload, reserved as usize);
        self.pager.write_through(0, image).map_err(map_pager)
    }

    /// Reopen a tree previously [`OptBeTree::persist`]ed on `device`. The
    /// config's fanout and segment size must match.
    pub fn open(device: SharedDevice, cfg: OptConfig) -> Result<Self, KvError> {
        let reserved = cfg.superblock_bytes();
        let mut pager = Pager::new(device, cfg.cache_bytes, reserved);
        let image = pager.read(0, reserved as usize).map_err(map_pager)?;
        let corrupt = |what: String| KvError::Corrupt(format!("superblock: {what}"));
        let dec = |e: CodecError| corrupt(e.to_string());
        let payload = unframe(&image).map_err(dec)?;
        let mut r = Reader::new(payload);
        if r.get_u32().map_err(dec)? != OPT_SUPERBLOCK_MAGIC {
            return Err(corrupt(
                "bad magic (no optimized Be-tree on this device?)".into(),
            ));
        }
        if r.get_u8().map_err(dec)? != OPT_SUPERBLOCK_VERSION {
            return Err(corrupt("unsupported version".into()));
        }
        let fanout = r.get_u32().map_err(dec)? as usize;
        let seg_bytes = r.get_u64().map_err(dec)? as usize;
        if fanout != cfg.fanout || seg_bytes != cfg.seg_bytes {
            return Err(KvError::Config(format!(
                "shape mismatch: device has F={fanout}/seg={seg_bytes}, config says F={}/seg={}",
                cfg.fanout, cfg.seg_bytes
            )));
        }
        let height = r.get_u32().map_err(dec)?;
        let count = r.get_u64().map_err(dec)?;
        let next_seq = r.get_u64().map_err(dec)?;
        let root = match Seg::decode_from(&mut r).map_err(dec)? {
            Some(Seg::Desc(d)) => d,
            _ => return Err(corrupt("missing root descriptor".into())),
        };
        let (high_water, free) = decode_alloc_state(&mut r).map_err(dec)?;
        pager.restore_alloc(high_water, free, reserved);
        Ok(OptBeTree {
            pager,
            fanout: cfg.fanout,
            cap: cfg.cap(),
            seg_bytes: cfg.seg_bytes,
            node_bytes: cfg.node_bytes(),
            merge: cfg.merge,
            root,
            height,
            count,
            next_seq,
            last_cost: OpCost::default(),
            obs: None,
        })
    }

    /// Attach an observability registry: query descents open per-level
    /// `optbetree.level` spans, flushes open `optbetree.drain` spans, and
    /// every operation publishes the pager's cache counters.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// Flush and empty the cache.
    pub fn drop_cache(&mut self) -> Result<(), KvError> {
        self.pager.drop_cache().map_err(map_pager)
    }

    // ------------------------------------------------------------------
    // Segment / node IO
    // ------------------------------------------------------------------

    fn write_whole(&mut self, addr: u64, segs: &[Seg]) -> Result<(), KvError> {
        if segs.len() > self.cap {
            return Err(KvError::Config(format!(
                "{} segments exceed node capacity {}",
                segs.len(),
                self.cap
            )));
        }
        let mut image = Vec::with_capacity(self.node_bytes);
        for seg in segs {
            if seg.size() > self.seg_bytes {
                return Err(KvError::Config(format!(
                    "segment of {} bytes exceeds seg_bytes {}",
                    seg.size(),
                    self.seg_bytes
                )));
            }
            let mut w = Writer::with_capacity(self.seg_bytes - FRAME_OVERHEAD);
            seg.encode_into(&mut w);
            // Each segment gets its own checksummed frame so partial-node
            // (single-segment) reads can still be validated.
            image.extend_from_slice(&frame_into_slot(&w.into_bytes(), self.seg_bytes));
        }
        image.resize(self.node_bytes, 0);
        self.pager.write(addr, image).map_err(map_pager)
    }

    fn read_whole(&mut self, addr: u64, used: usize) -> Result<Vec<Seg>, KvError> {
        let image = self.pager.read(addr, self.node_bytes).map_err(map_pager)?;
        let mut segs = Vec::with_capacity(used);
        for j in 0..used {
            let slice = &image[j * self.seg_bytes..(j + 1) * self.seg_bytes];
            let payload = unframe(slice)
                .map_err(|e| KvError::Corrupt(format!("node {addr} seg {j}: {e}")))?;
            match Seg::decode(payload)
                .map_err(|e| KvError::Corrupt(format!("node {addr} seg {j}: {e}")))?
            {
                Some(s) => segs.push(s),
                None => {
                    return Err(KvError::Corrupt(format!(
                        "node {addr}: expected {used} segments, found {j}"
                    )))
                }
            }
        }
        Ok(segs)
    }

    fn read_seg(&mut self, addr: u64, j: usize) -> Result<Seg, KvError> {
        let buf = self
            .pager
            .read_within(addr, self.node_bytes, j * self.seg_bytes, self.seg_bytes)
            .map_err(map_pager)?;
        let payload =
            unframe(&buf).map_err(|e| KvError::Corrupt(format!("node {addr} seg {j}: {e}")))?;
        match Seg::decode(payload)
            .map_err(|e| KvError::Corrupt(format!("node {addr} seg {j}: {e}")))?
        {
            Some(s) => Ok(s),
            None => Err(KvError::Corrupt(format!("node {addr}: segment {j} empty"))),
        }
    }

    // ------------------------------------------------------------------
    // Message partitioning
    // ------------------------------------------------------------------

    /// Partition `(key, seq)`-sorted messages by boundaries into per-segment
    /// groups.
    fn partition(msgs: Vec<Message>, boundaries: &[Vec<u8>]) -> Vec<Vec<Message>> {
        let used = boundaries.len() + 1;
        let mut groups: Vec<Vec<Message>> = (0..used).map(|_| Vec::new()).collect();
        let mut j = 0usize;
        for m in msgs {
            while j < boundaries.len() && boundaries[j].as_slice() <= m.key.as_slice() {
                j += 1;
            }
            groups[j].push(m);
        }
        groups
    }

    // ------------------------------------------------------------------
    // Flush (the structural workhorse)
    // ------------------------------------------------------------------

    /// Drain `desc.msgs` into the node it describes. New right siblings
    /// `(separator, desc)` are pushed onto `out` for the caller to adopt.
    ///
    /// Error discipline (pinned by the `dam-check` fault modes): the
    /// buffered messages are the only copy of acknowledged updates, and
    /// `desc` must keep matching the node image in the cache. On error,
    /// either nothing beneath this descriptor changed (`committed` stays
    /// false; the descriptor and the live-key count are restored exactly)
    /// or the subtree was rewritten (`committed` set; `desc` and `out`
    /// reflect the committed state and the error is reported after the
    /// fact). Either way, a surfaced device fault never strips acked
    /// writes, and a redriven operation converges instead of silently
    /// diverging.
    fn flush_child(
        &mut self,
        desc: &mut ChildDesc,
        out: &mut Vec<(Vec<u8>, ChildDesc)>,
        committed: &mut bool,
    ) -> Result<(), KvError> {
        if desc.msgs.is_empty() {
            return Ok(());
        }
        let backup = desc.clone();
        let count_before = self.count;
        let result = self.flush_child_inner(desc, out, committed);
        if result.is_err() && !*committed {
            *desc = backup;
            self.count = count_before;
        }
        result
    }

    fn flush_child_inner(
        &mut self,
        desc: &mut ChildDesc,
        out: &mut Vec<(Vec<u8>, ChildDesc)>,
        committed: &mut bool,
    ) -> Result<(), KvError> {
        let _flush = self.obs.as_ref().map(|o| o.descend("optbetree.drain"));
        let msgs = std::mem::take(&mut desc.msgs);
        let mut segs = self.read_whole(desc.addr, desc.used())?;
        let groups = Self::partition(msgs, &desc.boundaries);

        if desc.is_leaf {
            for (j, group) in groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let Seg::Subleaf(entries) = &mut segs[j] else {
                    return Err(KvError::Corrupt(
                        "desc says leaf but segment is not a subleaf".into(),
                    ));
                };
                let delta = apply_msgs_to_entries(entries, &group, self.merge.as_ref());
                self.count = (self.count as i64 + delta) as u64;
            }
            self.persist_leaf(desc, segs, out, committed)
        } else {
            // Deliver group by group so a failed cascade can hand its
            // undelivered messages back to this buffer instead of losing
            // them; `shift` tracks index displacement from adoptions.
            let mut pending: Vec<Message> = Vec::new();
            let mut deferred: Option<KvError> = None;
            let mut shift = 0usize;
            for (j, group) in groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                if deferred.is_some() {
                    pending.extend(group);
                    continue;
                }
                let jj = j + shift;
                let Seg::Desc(d) = &mut segs[jj] else {
                    return Err(KvError::Corrupt(
                        "desc says internal but segment is not a desc".into(),
                    ));
                };
                let d_backup = d.clone();
                let existing = std::mem::take(&mut d.msgs);
                d.msgs = buffer_merge(existing, group.clone());
                if d.size() <= self.seg_bytes {
                    continue;
                }
                let mut child_out = Vec::new();
                let mut child_committed = false;
                match self.flush_child(d, &mut child_out, &mut child_committed) {
                    Ok(()) => {
                        *committed = true;
                        if let Seg::Desc(d) = &segs[jj] {
                            if d.size() > self.seg_bytes {
                                deferred = Some(KvError::Config(
                                    "drained descriptor still exceeds seg_bytes \
                                     (fanout/keys too large)"
                                        .into(),
                                ));
                            }
                        }
                    }
                    Err(e) => {
                        if !child_committed {
                            // The child subtree is untouched; revert the
                            // merge and carry the group back to our buffer.
                            let Seg::Desc(d) = &mut segs[jj] else {
                                unreachable!()
                            };
                            *d = d_backup;
                            pending.extend(group);
                            deferred = Some(e);
                            continue;
                        }
                        // The child rewrote itself: from here this node
                        // must be persisted to stay in sync with it.
                        *committed = true;
                        deferred = Some(e);
                    }
                }
                let k = child_out.len();
                for (off, (sep, nd)) in child_out.into_iter().enumerate() {
                    desc.boundaries.insert(jj + off, sep);
                    segs.insert(jj + 1 + off, Seg::Desc(nd));
                }
                shift += k;
            }
            // Undelivered messages return to this buffer (persisted by our
            // parent, or held in memory at the root).
            desc.msgs = pending;
            if let Some(e) = deferred {
                if !*committed {
                    // Nothing beneath us changed; the wrapper restores.
                    return Err(e);
                }
                let _ = self.persist_internal(desc, segs, out, committed);
                return Err(e);
            }
            self.persist_internal(desc, segs, out, committed)
        }
    }

    /// Persist a leaf's segments, repacking/splitting if any subleaf
    /// overflows. Updates `desc.boundaries`; pushes new sibling leaves
    /// onto `out`.
    ///
    /// Write ordering is load-bearing: fresh-address sibling nodes are
    /// written before this descriptor's own node, so a failure before the
    /// commit point leaves the original image (and `desc`) untouched —
    /// the allocated nodes are orphaned garbage, not lost data. Once
    /// `committed` is set, `desc`/`out` match what the cache holds (writes
    /// apply to the cache even when a device fault surfaces).
    fn persist_leaf(
        &mut self,
        desc: &mut ChildDesc,
        segs: Vec<Seg>,
        out: &mut Vec<(Vec<u8>, ChildDesc)>,
        committed: &mut bool,
    ) -> Result<(), KvError> {
        let any_oversize = segs.iter().any(|s| s.size() > self.seg_bytes);
        if !any_oversize && segs.len() <= self.cap {
            *committed = true;
            return self.write_whole(desc.addr, &segs);
        }
        // Repack: concatenate (already key-ordered) and re-chunk.
        let mut all: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for seg in segs {
            let Seg::Subleaf(entries) = seg else {
                return Err(KvError::Corrupt("leaf repack found non-subleaf".into()));
            };
            all.extend(entries);
        }
        let target = (self.seg_bytes * 3) / 4;
        let mut chunks: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::new();
        let mut cur: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut bytes = SUBLEAF_HEADER_BYTES;
        for (k, v) in all {
            let sz = 8 + k.len() + v.len();
            if SUBLEAF_HEADER_BYTES + sz > self.seg_bytes {
                return Err(KvError::Config("entry larger than a subleaf".into()));
            }
            if !cur.is_empty() && bytes + sz > target {
                chunks.push(std::mem::take(&mut cur));
                bytes = SUBLEAF_HEADER_BYTES;
            }
            bytes += sz;
            cur.push((k, v));
        }
        if !cur.is_empty() {
            chunks.push(cur);
        }
        if chunks.is_empty() {
            chunks.push(Vec::new());
        }
        // Group chunks into leaf nodes of at most `fanout` subleaves.
        #[allow(clippy::type_complexity)]
        let node_groups: Vec<&[Vec<(Vec<u8>, Vec<u8>)>]> =
            chunks.chunks(self.fanout.max(1)).collect();
        // Allocate every new address up front, then write the sibling
        // nodes before rewriting our own.
        let mut addrs = vec![desc.addr];
        for _ in 1..node_groups.len() {
            addrs.push(self.alloc_node()?);
        }
        for (gi, group) in node_groups.iter().enumerate().skip(1) {
            let group_segs: Vec<Seg> = group.iter().map(|c| Seg::Subleaf(c.to_vec())).collect();
            self.write_whole(addrs[gi], &group_segs)?;
        }
        // Commit point: publish the siblings, retarget the descriptor,
        // then rewrite our own node last.
        for (gi, group) in node_groups.iter().enumerate().skip(1) {
            let boundaries: Vec<Vec<u8>> = group[1..].iter().map(|c| c[0].0.clone()).collect();
            out.push((
                group[0][0].0.clone(),
                ChildDesc {
                    addr: addrs[gi],
                    is_leaf: true,
                    boundaries,
                    msgs: Vec::new(),
                },
            ));
        }
        desc.boundaries = node_groups[0][1..].iter().map(|c| c[0].0.clone()).collect();
        *committed = true;
        let group_segs: Vec<Seg> = node_groups[0]
            .iter()
            .map(|c| Seg::Subleaf(c.to_vec()))
            .collect();
        self.write_whole(desc.addr, &group_segs)
    }

    /// Persist an internal node's segments, splitting the node when it
    /// exceeds capacity. Updates `desc.boundaries`; pushes new siblings
    /// onto `out`. Same write ordering and commit discipline as
    /// [`Self::persist_leaf`].
    fn persist_internal(
        &mut self,
        desc: &mut ChildDesc,
        segs: Vec<Seg>,
        out: &mut Vec<(Vec<u8>, ChildDesc)>,
        committed: &mut bool,
    ) -> Result<(), KvError> {
        debug_assert_eq!(segs.len(), desc.boundaries.len() + 1);
        if segs.len() <= self.cap {
            *committed = true;
            return self.write_whole(desc.addr, &segs);
        }
        // Split into nodes of at most `fanout` segments.
        let group_size = self.fanout.max(2);
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut start = 0usize;
        while start < segs.len() {
            let end = (start + group_size).min(segs.len());
            ranges.push((start, end));
            start = end;
        }
        let mut addrs = vec![desc.addr];
        for _ in 1..ranges.len() {
            addrs.push(self.alloc_node()?);
        }
        for (gi, &(s, e)) in ranges.iter().enumerate().skip(1) {
            self.write_whole(addrs[gi], &segs[s..e])?;
        }
        // Commit point.
        let boundaries = std::mem::take(&mut desc.boundaries);
        for (gi, &(s, e)) in ranges.iter().enumerate().skip(1) {
            out.push((
                boundaries[s - 1].clone(),
                ChildDesc {
                    addr: addrs[gi],
                    is_leaf: false,
                    boundaries: boundaries[s..e - 1].to_vec(),
                    msgs: Vec::new(),
                },
            ));
        }
        let (s0, e0) = ranges[0];
        desc.boundaries = boundaries[s0..e0 - 1].to_vec();
        *committed = true;
        self.write_whole(desc.addr, &segs[s0..e0])
    }

    fn alloc_node(&mut self) -> Result<u64, KvError> {
        self.pager.alloc(self.node_bytes as u64).map_err(map_pager)
    }

    /// Grow the root when it splits.
    fn grow_root(&mut self, siblings: Vec<(Vec<u8>, ChildDesc)>) -> Result<(), KvError> {
        if siblings.is_empty() {
            return Ok(());
        }
        let addr = self.alloc_node()?;
        let old = std::mem::replace(
            &mut self.root,
            ChildDesc {
                addr,
                is_leaf: false,
                boundaries: Vec::new(),
                msgs: Vec::new(),
            },
        );
        let mut segs = vec![Seg::Desc(old)];
        let mut boundaries = Vec::new();
        for (sep, d) in siblings {
            boundaries.push(sep);
            segs.push(Seg::Desc(d));
        }
        // Update the in-memory root before the write: the write lands in
        // the cache even when a device fault surfaces, so the descriptor
        // must already describe the new node.
        self.root.boundaries = boundaries;
        self.height += 1;
        self.write_whole(addr, &segs)
    }

    // ------------------------------------------------------------------
    // Entry points
    // ------------------------------------------------------------------

    fn entry_fits(&self, key: &[u8], payload: usize) -> Result<(), KvError> {
        let entry = SUBLEAF_HEADER_BYTES + 8 + key.len() + payload;
        // Message footprint + framed-descriptor fixed overhead.
        let msg = 17 + key.len() + payload + 18 + FRAME_OVERHEAD;
        if entry.max(msg) > self.seg_bytes {
            return Err(KvError::Config(format!(
                "entry of key {} + payload {} bytes cannot fit in seg_bytes {}",
                key.len(),
                payload,
                self.seg_bytes
            )));
        }
        Ok(())
    }

    fn enqueue(&mut self, key: &[u8], op: Operation) -> Result<(), KvError> {
        self.entry_fits(key, op.payload_len())?;
        let msg = Message {
            seq: self.next_seq,
            key: key.to_vec(),
            op,
        };
        self.next_seq += 1;
        let mut root = std::mem::replace(
            &mut self.root,
            ChildDesc {
                addr: 0,
                is_leaf: true,
                boundaries: Vec::new(),
                msgs: Vec::new(),
            },
        );
        buffer_insert(&mut root.msgs, msg);
        let mut siblings = Vec::new();
        let mut committed = false;
        let result = if root.size() > self.seg_bytes {
            self.flush_child(&mut root, &mut siblings, &mut committed)
        } else {
            Ok(())
        };
        self.root = root;
        // Adopt committed splits even when the flush reported an error:
        // the sibling nodes are already written and the root descriptor
        // already routes around them.
        let grow = self.grow_root(siblings);
        result.and(grow)
    }

    /// Upsert: merge `delta` into the key's value via the configured
    /// [`MergeOperator`].
    pub fn upsert(&mut self, key: &[u8], delta: &[u8]) -> Result<(), KvError> {
        let snap = self.begin_op();
        self.enqueue(key, Operation::Upsert(delta.to_vec()))?;
        self.finish_op(&snap);
        Ok(())
    }

    fn get_inner(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        fn collect(collected: &mut Vec<Message>, msgs: &[Message], key: &[u8]) {
            let lo = msgs.partition_point(|m| m.key.as_slice() < key);
            for m in &msgs[lo..] {
                if m.key.as_slice() != key {
                    break;
                }
                collected.push(m.clone());
            }
        }
        let mut collected: Vec<Message> = Vec::new();
        collect(&mut collected, &self.root.msgs, key);
        let mut desc = self.root.clone();
        let mut depth = 0u32;
        loop {
            let _lvl = self
                .obs
                .as_ref()
                .map(|o| o.span_at("optbetree.level", depth));
            depth += 1;
            let j = desc.route(key);
            if desc.is_leaf {
                let seg = self.read_seg(desc.addr, j)?;
                let Seg::Subleaf(entries) = seg else {
                    return Err(KvError::Corrupt("expected subleaf".into()));
                };
                let base = entries
                    .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                    .ok()
                    .map(|i| entries[i].1.clone());
                collected.sort_by_key(|m| m.seq);
                return Ok(replay(base.as_deref(), &collected, self.merge.as_ref()));
            }
            let seg = self.read_seg(desc.addr, j)?;
            let Seg::Desc(next) = seg else {
                return Err(KvError::Corrupt("expected descriptor segment".into()));
            };
            collect(&mut collected, &next.msgs, key);
            desc = next;
        }
    }

    fn range_rec(
        &mut self,
        desc: &ChildDesc,
        start: &[u8],
        end: &[u8],
        inherited: Vec<Message>,
        out: &mut Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<(), KvError> {
        let _lvl = self.obs.as_ref().map(|o| o.descend("optbetree.level"));
        // Pending messages for this subtree, restricted to the query range.
        let own: Vec<Message> = desc
            .msgs
            .iter()
            .filter(|m| m.key.as_slice() >= start && m.key.as_slice() < end)
            .cloned()
            .collect();
        let merged = buffer_merge(inherited, own);
        let groups = Self::partition(merged, &desc.boundaries);
        for (j, group) in groups.into_iter().enumerate() {
            let seg_lo = if j == 0 {
                None
            } else {
                Some(desc.boundaries[j - 1].as_slice())
            };
            let seg_hi = if j == desc.boundaries.len() {
                None
            } else {
                Some(desc.boundaries[j].as_slice())
            };
            let overlaps = seg_lo.is_none_or(|l| l < end) && seg_hi.is_none_or(|h| h > start);
            if !overlaps {
                debug_assert!(group.is_empty());
                continue;
            }
            if desc.is_leaf {
                let Seg::Subleaf(mut entries) = self.read_seg(desc.addr, j)? else {
                    return Err(KvError::Corrupt("expected subleaf".into()));
                };
                apply_msgs_to_entries(&mut entries, &group, self.merge.as_ref());
                let lo = entries.partition_point(|(k, _)| k.as_slice() < start);
                for (k, v) in &entries[lo..] {
                    if k.as_slice() >= end {
                        break;
                    }
                    out.push((k.clone(), v.clone()));
                }
            } else {
                let Seg::Desc(child) = self.read_seg(desc.addr, j)? else {
                    return Err(KvError::Corrupt("expected descriptor segment".into()));
                };
                self.range_rec(&child, start, end, group, out)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Drain / bulk load / invariants
    // ------------------------------------------------------------------

    /// Push every pending message down to the subleaves.
    pub fn drain_all(&mut self) -> Result<(), KvError> {
        let mut root = std::mem::replace(
            &mut self.root,
            ChildDesc {
                addr: 0,
                is_leaf: true,
                boundaries: Vec::new(),
                msgs: Vec::new(),
            },
        );
        let mut siblings = Vec::new();
        let result = self.drain_desc(&mut root, &mut siblings);
        self.root = root;
        // As in `enqueue`, committed splits must be adopted even when the
        // drain surfaced an error partway down.
        let grow = self.grow_root(siblings);
        result.and(grow)
    }

    /// Drain `desc` and its whole subtree. Splits produced anywhere along
    /// the way are pushed onto `out` (drained themselves on the success
    /// path, possibly undrained when an error is propagated — either way
    /// they are committed nodes the caller must adopt).
    fn drain_desc(
        &mut self,
        desc: &mut ChildDesc,
        out: &mut Vec<(Vec<u8>, ChildDesc)>,
    ) -> Result<(), KvError> {
        let mut committed = false;
        let mut sibs = Vec::new();
        if let Err(e) = self.flush_child(desc, &mut sibs, &mut committed) {
            out.extend(sibs);
            return Err(e);
        }
        if !desc.is_leaf {
            let mut segs = match self.read_whole(desc.addr, desc.used()) {
                Ok(s) => s,
                Err(e) => {
                    out.extend(sibs);
                    return Err(e);
                }
            };
            let mut j = 0usize;
            while j < segs.len() {
                let Seg::Desc(d) = &mut segs[j] else {
                    out.extend(sibs);
                    return Err(KvError::Corrupt("expected descriptor segment".into()));
                };
                let mut child_sibs = Vec::new();
                let child = self.drain_desc(d, &mut child_sibs);
                let k = child_sibs.len();
                for (off, (sep, nd)) in child_sibs.into_iter().enumerate() {
                    desc.boundaries.insert(j + off, sep);
                    segs.insert(j + 1 + off, Seg::Desc(nd));
                }
                if let Err(e) = child {
                    // The child may have rewritten itself; persist this
                    // node so its stored descriptors stay in sync.
                    let mut c = false;
                    let _ = self.persist_internal(desc, segs, out, &mut c);
                    out.extend(sibs);
                    return Err(e);
                }
                j += 1 + k;
            }
            let mut c = false;
            if let Err(e) = self.persist_internal(desc, segs, out, &mut c) {
                out.extend(sibs);
                return Err(e);
            }
        }
        // Siblings from a node split contain already-drained descs, but a
        // leaf split can leave buffered messages on new siblings' parents;
        // drain them too so `out` only carries fully drained descs.
        self.drain_siblings(sibs, out)
    }

    fn drain_siblings(
        &mut self,
        siblings: Vec<(Vec<u8>, ChildDesc)>,
        out: &mut Vec<(Vec<u8>, ChildDesc)>,
    ) -> Result<(), KvError> {
        for (sep, mut sd) in siblings {
            let mut more = Vec::new();
            let r = self.drain_desc(&mut sd, &mut more);
            out.push((sep, sd));
            out.extend(more);
            r?;
        }
        Ok(())
    }

    /// Build a tree bottom-up from strictly ascending pairs.
    pub fn bulk_load(
        device: SharedDevice,
        cfg: OptConfig,
        pairs: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<Self, KvError> {
        let bulk_fill = cfg.bulk_fill;
        let mut tree = OptBeTree::create(device, cfg)?;
        let target = (tree.seg_bytes as f64 * bulk_fill) as usize;

        // Pack entries into subleaf chunks.
        let mut chunks: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::new();
        let mut cur: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut bytes = SUBLEAF_HEADER_BYTES;
        let mut count = 0u64;
        let mut last: Option<Vec<u8>> = None;
        for (k, v) in pairs {
            if let Some(prev) = &last {
                if *prev >= k {
                    return Err(KvError::Config(
                        "bulk_load input not strictly ascending".into(),
                    ));
                }
            }
            last = Some(k.clone());
            tree.entry_fits(&k, v.len())?;
            let sz = 8 + k.len() + v.len();
            if !cur.is_empty() && bytes + sz > target {
                chunks.push(std::mem::take(&mut cur));
                bytes = SUBLEAF_HEADER_BYTES;
            }
            bytes += sz;
            cur.push((k, v));
            count += 1;
        }
        if !cur.is_empty() {
            chunks.push(cur);
        }
        if chunks.is_empty() {
            return Ok(tree);
        }

        // Leaf level: `fanout` subleaves per leaf node.
        let mut level: Vec<(Vec<u8>, ChildDesc)> = Vec::new();
        for group in chunks.chunks(tree.fanout.max(1)) {
            let first = group[0][0].0.clone();
            let boundaries: Vec<Vec<u8>> = group[1..].iter().map(|c| c[0].0.clone()).collect();
            let addr = if level.is_empty() {
                tree.root.addr
            } else {
                tree.alloc_node()?
            };
            let segs: Vec<Seg> = group.iter().map(|c| Seg::Subleaf(c.to_vec())).collect();
            tree.write_whole(addr, &segs)?;
            level.push((
                first,
                ChildDesc {
                    addr,
                    is_leaf: true,
                    boundaries,
                    msgs: Vec::new(),
                },
            ));
        }

        // Internal levels: `fanout` descriptors per node.
        let mut height = 1u32;
        while level.len() > 1 {
            let mut next: Vec<(Vec<u8>, ChildDesc)> = Vec::new();
            let mut it = level.into_iter().peekable();
            while it.peek().is_some() {
                let group: Vec<_> = it.by_ref().take(tree.fanout.max(2)).collect();
                let first = group[0].0.clone();
                let boundaries: Vec<Vec<u8>> = group[1..].iter().map(|(k, _)| k.clone()).collect();
                let addr = tree.alloc_node()?;
                let segs: Vec<Seg> = group.into_iter().map(|(_, d)| Seg::Desc(d)).collect();
                tree.write_whole(addr, &segs)?;
                next.push((
                    first,
                    ChildDesc {
                        addr,
                        is_leaf: false,
                        boundaries,
                        msgs: Vec::new(),
                    },
                ));
            }
            level = next;
            height += 1;
        }

        let (_, root_desc) = level.pop().expect("nonempty level");
        tree.root = root_desc;
        tree.height = height;
        tree.count = count;
        tree.flush()?;
        Ok(tree)
    }

    /// Verify structural invariants; returns live entries at subleaves.
    pub fn check_invariants(&mut self) -> Result<u64, KvError> {
        let root = self.root.clone();
        let height = self.height;
        let n = self.check_desc(&root, height, None, None, true)?;
        if n != self.count {
            return Err(KvError::Corrupt(format!(
                "count mismatch: walked {n}, tracked {}",
                self.count
            )));
        }
        Ok(n)
    }

    fn check_desc(
        &mut self,
        desc: &ChildDesc,
        level: u32,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        is_root: bool,
    ) -> Result<u64, KvError> {
        if !is_root && desc.size() > self.seg_bytes {
            return Err(KvError::Corrupt(format!(
                "descriptor for {} oversize",
                desc.addr
            )));
        }
        for w in desc.boundaries.windows(2) {
            if w[0] >= w[1] {
                return Err(KvError::Corrupt(format!(
                    "node {} boundaries unsorted",
                    desc.addr
                )));
            }
        }
        for w in desc.msgs.windows(2) {
            if (w[0].key.as_slice(), w[0].seq) >= (w[1].key.as_slice(), w[1].seq) {
                return Err(KvError::Corrupt(format!(
                    "node {} messages unsorted",
                    desc.addr
                )));
            }
        }
        for m in &desc.msgs {
            if lo.is_some_and(|l| m.key.as_slice() < l) || hi.is_some_and(|h| m.key.as_slice() >= h)
            {
                return Err(KvError::Corrupt(format!(
                    "node {} message out of range",
                    desc.addr
                )));
            }
        }
        if desc.is_leaf && level != 1 {
            return Err(KvError::Corrupt(format!(
                "leaf {} at level {level}",
                desc.addr
            )));
        }
        if !desc.is_leaf && level < 2 {
            return Err(KvError::Corrupt(format!(
                "internal {} at leaf level",
                desc.addr
            )));
        }
        let segs = self.read_whole(desc.addr, desc.used())?;
        let mut total = 0u64;
        for (j, seg) in segs.iter().enumerate() {
            let slo = if j == 0 {
                lo
            } else {
                Some(desc.boundaries[j - 1].as_slice())
            };
            let shi = if j == desc.boundaries.len() {
                hi
            } else {
                Some(desc.boundaries[j].as_slice())
            };
            match seg {
                Seg::Subleaf(entries) => {
                    if !desc.is_leaf {
                        return Err(KvError::Corrupt("subleaf under internal desc".into()));
                    }
                    for w in entries.windows(2) {
                        if w[0].0 >= w[1].0 {
                            return Err(KvError::Corrupt(format!(
                                "subleaf {}[{j}] unsorted",
                                desc.addr
                            )));
                        }
                    }
                    for (k, _) in entries {
                        if slo.is_some_and(|l| k.as_slice() < l)
                            || shi.is_some_and(|h| k.as_slice() >= h)
                        {
                            return Err(KvError::Corrupt(format!(
                                "subleaf {}[{j}] key out of range",
                                desc.addr
                            )));
                        }
                    }
                    total += entries.len() as u64;
                }
                Seg::Desc(d) => {
                    if desc.is_leaf {
                        return Err(KvError::Corrupt("descriptor under leaf desc".into()));
                    }
                    total += self.check_desc(d, level - 1, slo, shi, false)?;
                }
            }
        }
        Ok(total)
    }

    /// Reset per-op cost accounting and snapshot the pager counters. Called
    /// at the start of every `Dictionary` operation so a failed op reports
    /// zero cost instead of the previous op's stale numbers.
    fn begin_op(&mut self) -> dam_cache::CostSnapshot {
        self.last_cost = OpCost::default();
        self.pager.snapshot()
    }

    fn finish_op(&mut self, snap: &dam_cache::CostSnapshot) {
        let d = self.pager.cost_since(snap);
        self.last_cost = OpCost {
            ios: d.ios,
            bytes_read: d.bytes_read,
            bytes_written: d.bytes_written,
            io_time_ns: d.io_time_ns,
        };
        if let Some(o) = &self.obs {
            o.record_pager(&self.pager.counters());
        }
    }
}

impl Dictionary for OptBeTree {
    fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<(), KvError> {
        let snap = self.begin_op();
        self.enqueue(key, Operation::Put(value.to_vec()))?;
        self.finish_op(&snap);
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> Result<(), KvError> {
        let snap = self.begin_op();
        self.enqueue(key, Operation::Delete)?;
        self.finish_op(&snap);
        Ok(())
    }

    fn apply_batch(&mut self, batch: &[BatchOp]) -> Result<(), KvError> {
        // Batched writes all enter through the root message buffer under
        // one cost window (see `BeTree::apply_batch`); with Theorem-9 fat
        // nodes the buffer is larger still, so the amortization is deeper.
        let snap = self.begin_op();
        for op in batch {
            match op {
                BatchOp::Put { key, value } => self.enqueue(key, Operation::Put(value.clone()))?,
                BatchOp::Del { key } => self.enqueue(key, Operation::Delete)?,
            }
        }
        self.finish_op(&snap);
        Ok(())
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        let snap = self.begin_op();
        let r = self.get_inner(key);
        self.finish_op(&snap);
        r
    }

    fn range(&mut self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>, KvError> {
        let snap = self.begin_op();
        let mut out = Vec::new();
        if start < end {
            let root = self.root.clone();
            self.range_rec(&root, start, end, Vec::new(), &mut out)?;
        }
        self.finish_op(&snap);
        Ok(out)
    }

    fn last_op_cost(&self) -> OpCost {
        self.last_cost
    }

    fn sync(&mut self) -> Result<(), KvError> {
        let snap = self.begin_op();
        // Durability contract: a successful sync leaves a superblock from
        // which `open` recovers this exact state (including root-buffered
        // messages, which ride in the superblock's root descriptor).
        self.persist()?;
        self.finish_op(&snap);
        Ok(())
    }

    /// Exact live-key count; drains all pending messages first.
    fn len(&mut self) -> Result<u64, KvError> {
        let snap = self.begin_op();
        self.drain_all()?;
        self.finish_op(&snap);
        Ok(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dam_kv::key_from_u64;
    use dam_kv::msg::CounterMerge;
    use dam_storage::{FaultInjector, FaultMode, RamDisk, SimDuration};

    fn tree(fanout: usize, seg_bytes: usize) -> OptBeTree {
        let dev = SharedDevice::new(Box::new(RamDisk::new(1 << 28, SimDuration(1000))));
        OptBeTree::create(dev, OptConfig::new(fanout, seg_bytes, 1 << 20)).unwrap()
    }

    fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
        (
            key_from_u64(i).to_vec(),
            format!("value-{i:08}").into_bytes(),
        )
    }

    #[test]
    fn surfaced_faults_never_lose_acked_updates() {
        // Regression (found by dam-check): a device fault surfaced during
        // a buffer flush used to drop buffered messages or leave a
        // descriptor out of sync with its node image — keys vanished and
        // stale values reappeared. Every mutation is retried until it
        // reports Ok; the final state must then match a shadow map
        // exactly, faults or not.
        let (inj, switch) = FaultInjector::new(RamDisk::new(1 << 26, SimDuration(200)));
        let dev = SharedDevice::new(Box::new(inj));
        let mut t = OptBeTree::create(dev, OptConfig::new(4, 1024, 1 << 16)).unwrap();
        switch.set(FaultMode::Probabilistic {
            num: 1,
            denom: 48,
            seed: 7,
        });
        let mut shadow: std::collections::BTreeMap<Vec<u8>, Vec<u8>> =
            std::collections::BTreeMap::new();
        let mut rng = 0x1234_5678u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        for i in 0..4000u64 {
            let k = key_from_u64(next() % 700).to_vec();
            if next() % 10 < 7 {
                let v = format!("v{i:06}").into_bytes();
                let mut tries = 0;
                while let Err(e) = t.insert(&k, &v) {
                    tries += 1;
                    assert!(tries < 200, "insert never converged: {e}");
                }
                shadow.insert(k, v);
            } else {
                let mut tries = 0;
                while let Err(e) = t.delete(&k) {
                    tries += 1;
                    assert!(tries < 200, "delete never converged: {e}");
                }
                shadow.remove(&k);
            }
        }
        switch.set(FaultMode::None);
        let dump = t.range(&[], &[0xFF; 17]).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            shadow.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(dump, want);
        assert_eq!(t.len().unwrap(), shadow.len() as u64);
        t.check_invariants().unwrap();
    }

    #[test]
    fn empty_tree() {
        let mut t = tree(4, 512);
        assert_eq!(t.get(b"x").unwrap(), None);
        assert_eq!(t.len().unwrap(), 0);
        assert!(t.range(b"a", b"z").unwrap().is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_get_small() {
        let mut t = tree(4, 512);
        for i in 0..50 {
            let (k, v) = kv(i);
            t.insert(&k, &v).unwrap();
        }
        for i in 0..50 {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k).unwrap(), Some(v), "key {i}");
        }
        assert_eq!(t.get(&key_from_u64(50)).unwrap(), None);
    }

    #[test]
    fn insert_get_through_growth() {
        let mut t = tree(4, 512);
        for i in 0..3000 {
            let (k, v) = kv(i);
            t.insert(&k, &v).unwrap();
        }
        assert!(t.height() >= 2, "height {}", t.height());
        t.check_invariants().unwrap();
        for i in (0..3000).step_by(41) {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k).unwrap(), Some(v), "key {i}");
        }
        assert_eq!(t.len().unwrap(), 3000);
        t.check_invariants().unwrap();
    }

    #[test]
    fn random_order_inserts() {
        let mut t = tree(4, 512);
        let keys: Vec<u64> = (0..1500).map(|i| (i * 1543) % 1500).collect();
        for &i in &keys {
            let (k, v) = kv(i);
            t.insert(&k, &v).unwrap();
        }
        t.check_invariants().unwrap();
        for &i in &keys {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k).unwrap(), Some(v));
        }
        assert_eq!(t.len().unwrap(), 1500);
    }

    #[test]
    fn overwrite_latest_wins() {
        let mut t = tree(4, 512);
        let (k, _) = kv(9);
        for round in 0..200u32 {
            t.insert(&k, &round.to_le_bytes()).unwrap();
        }
        assert_eq!(t.get(&k).unwrap(), Some(199u32.to_le_bytes().to_vec()));
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn tombstones_delete() {
        let mut t = tree(4, 512);
        for i in 0..800 {
            let (k, v) = kv(i);
            t.insert(&k, &v).unwrap();
        }
        for i in (0..800).step_by(3) {
            let (k, _) = kv(i);
            t.delete(&k).unwrap();
        }
        for i in 0..800 {
            let (k, v) = kv(i);
            let expect = if i % 3 == 0 { None } else { Some(v) };
            assert_eq!(t.get(&k).unwrap(), expect, "key {i}");
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn upserts_merge() {
        let dev = SharedDevice::new(Box::new(RamDisk::new(1 << 28, SimDuration(1000))));
        let mut cfg = OptConfig::new(4, 512, 1 << 20);
        cfg.merge = Box::new(CounterMerge);
        let mut t = OptBeTree::create(dev, cfg).unwrap();
        let (k, _) = kv(5);
        for _ in 0..50 {
            t.upsert(&k, &3u64.to_le_bytes()).unwrap();
        }
        let got = t.get(&k).unwrap().unwrap();
        assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 150);
    }

    #[test]
    fn range_spans_buffers_and_subleaves() {
        let mut t = tree(4, 512);
        for i in 0..1000 {
            let (k, v) = kv(i);
            t.insert(&k, &v).unwrap();
        }
        let out = t.range(&key_from_u64(200), &key_from_u64(260)).unwrap();
        assert_eq!(out.len(), 60);
        for (j, (k, v)) in out.iter().enumerate() {
            let (ek, ev) = kv(200 + j as u64);
            assert_eq!((k, v), (&ek, &ev), "at {j}");
        }
    }

    #[test]
    fn range_sees_fresh_tombstones() {
        let mut t = tree(4, 512);
        for i in 0..500 {
            let (k, v) = kv(i);
            t.insert(&k, &v).unwrap();
        }
        t.drain_all().unwrap();
        for i in 200..210 {
            let (k, _) = kv(i);
            t.delete(&k).unwrap();
        }
        let out = t.range(&key_from_u64(195), &key_from_u64(215)).unwrap();
        let keys: Vec<u64> = out
            .iter()
            .map(|(k, _)| dam_kv::key_to_u64(k).unwrap())
            .collect();
        assert_eq!(keys, vec![195, 196, 197, 198, 199, 210, 211, 212, 213, 214]);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let dev = SharedDevice::new(Box::new(RamDisk::new(1 << 28, SimDuration(1000))));
        let pairs: Vec<_> = (0..3000).map(kv).collect();
        let mut t =
            OptBeTree::bulk_load(dev, OptConfig::new(4, 512, 1 << 20), pairs.clone()).unwrap();
        t.check_invariants().unwrap();
        assert_eq!(t.len().unwrap(), 3000);
        for (k, v) in pairs.iter().step_by(113) {
            assert_eq!(t.get(k).unwrap().as_ref(), Some(v));
        }
        for i in 0..200 {
            let (k, _) = kv(i);
            t.delete(&k).unwrap();
        }
        assert_eq!(t.len().unwrap(), 2800);
        t.check_invariants().unwrap();
    }

    #[test]
    fn query_reads_one_segment_per_level() {
        // The Theorem 9 property this whole variant exists for.
        let dev = SharedDevice::new(Box::new(RamDisk::new(1 << 28, SimDuration(1000))));
        let pairs: Vec<_> = (0..20_000).map(kv).collect();
        let mut t = OptBeTree::bulk_load(dev, OptConfig::new(8, 1024, 1 << 22), pairs).unwrap();
        t.drop_cache().unwrap();
        let (k, _) = kv(12_345);
        t.get(&k).unwrap();
        let cost = t.last_op_cost();
        assert_eq!(
            cost.ios as u32,
            t.height(),
            "cold query must read exactly one segment per level"
        );
        assert_eq!(
            cost.bytes_read,
            t.height() as u64 * t.seg_bytes() as u64,
            "each query IO is one segment, not a whole node"
        );
    }

    #[test]
    fn structural_ops_use_whole_node_ios() {
        let mut t = tree(4, 512);
        for i in 0..2000 {
            let (k, v) = kv(i);
            t.insert(&k, &v).unwrap();
        }
        t.flush().unwrap();
        let c = t.pager().counters();
        // All writes are whole nodes.
        assert_eq!(c.bytes_written % t.node_bytes() as u64, 0);
        assert!(c.bytes_written > 0);
    }

    #[test]
    fn insert_amortization_beats_node_per_insert() {
        let mut t = tree(8, 1024);
        let n = 5000u64;
        for i in 0..n {
            let (k, v) = kv((i * 2654435761) % (1 << 30));
            t.insert(&k, &v).unwrap();
        }
        t.flush().unwrap();
        let per_insert = t.pager().counters().bytes_written as f64 / n as f64;
        assert!(
            per_insert < t.node_bytes() as f64 / 2.0,
            "bytes/insert {per_insert} vs node {}",
            t.node_bytes()
        );
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let dev = SharedDevice::new(Box::new(RamDisk::new(1 << 24, SimDuration(1000))));
        assert!(matches!(
            OptBeTree::bulk_load(dev, OptConfig::new(4, 512, 1 << 20), vec![kv(2), kv(1)]),
            Err(KvError::Config(_))
        ));
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut t = tree(4, 256);
        assert!(matches!(
            t.insert(b"k", &vec![0u8; 400]),
            Err(KvError::Config(_))
        ));
    }

    #[test]
    fn balanced_config_shapes() {
        let cfg = OptConfig::balanced(1 << 20, 116, 1 << 20);
        // ~9039 entries → F ≈ 96, seg ≈ 5461.
        assert!((90..=100).contains(&cfg.fanout), "fanout {}", cfg.fanout);
        assert!(cfg.node_bytes() >= (1 << 20) - cfg.seg_bytes * 2);
    }

    #[test]
    fn persist_and_open_roundtrip() {
        let dev = SharedDevice::new(Box::new(RamDisk::new(1 << 28, SimDuration(1000))));
        {
            let mut t = OptBeTree::create(dev.clone(), OptConfig::new(4, 512, 1 << 20)).unwrap();
            for i in 0..1200 {
                let (k, v) = kv(i);
                t.insert(&k, &v).unwrap();
            }
            for i in 0..100 {
                let (k, _) = kv(i * 2);
                t.delete(&k).unwrap();
            }
            // Deliberately persist with messages still buffered at the root:
            // the superblock must carry them.
            t.persist().unwrap();
        }
        let mut reopened = OptBeTree::open(dev, OptConfig::new(4, 512, 1 << 20)).unwrap();
        reopened.check_invariants().unwrap();
        assert_eq!(reopened.len().unwrap(), 1100);
        for i in 0..1200 {
            let (k, v) = kv(i);
            let expect = if i % 2 == 0 && i < 200 { None } else { Some(v) };
            assert_eq!(reopened.get(&k).unwrap(), expect, "key {i}");
        }
        let (k, _) = kv(600);
        reopened.insert(&k, b"fresh").unwrap();
        assert_eq!(reopened.get(&k).unwrap(), Some(b"fresh".to_vec()));
    }

    #[test]
    fn open_blank_or_mismatched_errors() {
        let dev = SharedDevice::new(Box::new(RamDisk::new(1 << 24, SimDuration(1000))));
        assert!(matches!(
            OptBeTree::open(dev.clone(), OptConfig::new(4, 512, 1 << 16)),
            Err(KvError::Corrupt(_))
        ));
        let mut t = OptBeTree::create(dev.clone(), OptConfig::new(4, 512, 1 << 16)).unwrap();
        let (k, v) = kv(1);
        t.insert(&k, &v).unwrap();
        t.persist().unwrap();
        drop(t);
        assert!(matches!(
            OptBeTree::open(dev, OptConfig::new(8, 512, 1 << 16)),
            Err(KvError::Config(_))
        ));
    }

    #[test]
    fn drain_then_count_consistent() {
        let mut t = tree(4, 512);
        for i in 0..700 {
            let (k, v) = kv(i);
            t.insert(&k, &v).unwrap();
        }
        for i in 0..100 {
            let (k, _) = kv(i);
            t.delete(&k).unwrap();
        }
        assert_eq!(t.len().unwrap(), 600);
        t.check_invariants().unwrap();
        // Idempotent.
        assert_eq!(t.len().unwrap(), 600);
    }

    /// Regression (dam-check): `len` drains pending messages, so its IO
    /// must be attributed to `last_op_cost` — and a failed operation must
    /// report zero cost rather than the previous operation's numbers.
    #[test]
    fn len_and_failed_ops_follow_cost_contract() {
        let mut t = tree(4, 1024);
        for i in 0..800 {
            let (k, v) = kv(i);
            t.insert(&k, &v).unwrap();
        }
        // Cold cache: the drain inside `len` must hit the device.
        t.drop_cache().unwrap();
        assert_eq!(t.len().unwrap(), 800);
        assert!(t.last_op_cost().ios > 0, "len's drain should be attributed");
        let err = t.insert(b"big", &vec![0u8; 4096]);
        assert!(matches!(err, Err(KvError::Config(_))));
        assert_eq!(t.last_op_cost(), OpCost::default(), "failed op is free");
    }
}
