//! Bε-trees over the simulated storage stack — the write-optimized
//! dictionary of §3 and §6, in two variants.
//!
//! # Standard variant ([`BeTree`])
//!
//! The textbook structure (and what TokuDB implements): internal nodes hold
//! pivots, children, and a per-child message buffer; the whole node is one
//! IO of `node_bytes`. Inserts and deletes enter the root buffer as
//! sequenced messages; when a node's image overflows its slot, the buffered
//! messages for the fullest child are *flushed* one level down, cascading as
//! needed. Queries read a root-to-leaf path and replay pending messages over
//! the leaf value. This is the structure Figure 3 measures and Lemma 8
//! analyzes: query cost `(1 + αB)·log_F(N/M)`.
//!
//! # Optimized variant ([`OptBeTree`], Theorem 9)
//!
//! The paper's improved design. Every node is a slot of `2F` fixed-size
//! *segments* of `B/F` bytes:
//!
//! * segment `j` of an internal node holds a [`ChildDesc`]: the address and
//!   routing keys (pivots) of child `j` **plus** the messages pending for
//!   child `j`'s subtree — "we store the pivots of a node outside of that
//!   node — specifically in the node's parent";
//! * segment `j` of a leaf holds a sorted run of key-value pairs (a
//!   *subleaf* — TokuDB's "basement node").
//!
//! A query therefore reads exactly **one segment per level** — cost
//! `1 + α(B/F + F·key)` instead of `1 + αB` — while flushes still move
//! batches of messages at full node granularity. This removes the
//! insert/query node-size trade-off (Corollaries 10–12).

pub mod node;
pub mod opt;
pub mod tree;

pub use node::BeNode;
pub use opt::{ChildDesc, OptBeTree, OptConfig};
pub use tree::{BeTree, BeTreeConfig};
