//! Serial/parallel equivalence of the sweep engine (the determinism
//! contract in `dam-bench/src/sweep.rs`): the same experiment run at
//! `jobs = 1` and `jobs = N` must produce identical result rows *and* an
//! identical merged metrics snapshot. CI runs this at several worker
//! counts (`DAM_EQUIV_JOBS`).

use dam_bench::{experiments, sweep, Scale};
use std::sync::Mutex;

/// Serializes the tests: they flip the process-wide jobs override and
/// reset the process-wide metrics registry.
static GUARD: Mutex<()> = Mutex::new(());

/// The parallel side's worker count (CI matrixes over this; the exact
/// value must never matter).
fn parallel_jobs() -> usize {
    std::env::var("DAM_EQUIV_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n >= 2)
        .unwrap_or(4)
}

/// Run `f` at the given job count with metrics on, returning its rows and
/// the merged global snapshot JSON.
fn run_with_metrics<R>(jobs: usize, f: impl Fn() -> Vec<R>) -> (Vec<R>, String) {
    // Must be set before the first `global_obs()` call in this process;
    // every caller holds GUARD, so there is no racing reader.
    std::env::set_var("DAM_METRICS", "1");
    let global = dam_bench::metrics::global_obs().expect("DAM_METRICS=1 must enable the registry");
    global.reset();
    sweep::set_global_jobs(Some(jobs));
    let rows = f();
    sweep::set_global_jobs(None);
    let snap = global.snapshot();
    snap.check_io_consistency()
        .expect("merged snapshot must keep the attribution invariant");
    (rows, snap.to_json())
}

/// Rows and merged metrics sidecar must be byte-identical across job
/// counts for a node-size sweep over real trees (fig2).
#[test]
fn fig2_parallel_matches_serial_rows_and_metrics() {
    let _guard = GUARD.lock().unwrap();
    let scale = Scale {
        n_keys: 8_000,
        ops: 40,
        ..Scale::smoke()
    };
    let (serial_rows, serial_snap) = run_with_metrics(1, || experiments::fig2(&scale));
    let jobs = parallel_jobs();
    let (par_rows, par_snap) = run_with_metrics(jobs, || experiments::fig2(&scale));
    assert_eq!(
        format!("{serial_rows:?}"),
        format!("{par_rows:?}"),
        "fig2 rows diverged at jobs={jobs}"
    );
    assert_eq!(
        serial_snap, par_snap,
        "fig2 merged metrics snapshot diverged at jobs={jobs}"
    );
}

/// Same contract for the PDAM client sweep (lemma13), whose points have
/// very uneven costs — a good test of order-independent merging.
#[test]
fn lemma13_parallel_matches_serial_rows_and_metrics() {
    let _guard = GUARD.lock().unwrap();
    let scale = Scale {
        lemma13_steps: 400,
        ..Scale::smoke()
    };
    let (serial_rows, serial_snap) = run_with_metrics(1, || experiments::lemma13(&scale));
    let jobs = parallel_jobs();
    let (par_rows, par_snap) = run_with_metrics(jobs, || experiments::lemma13(&scale));
    assert_eq!(
        format!("{serial_rows:?}"),
        format!("{par_rows:?}"),
        "lemma13 rows diverged at jobs={jobs}"
    );
    assert_eq!(
        serial_snap, par_snap,
        "lemma13 merged metrics snapshot diverged at jobs={jobs}"
    );
}

/// Re-running the identical sweep twice at the same job count must also be
/// byte-identical (no hidden process-wide state beyond the registry).
#[test]
fn repeated_runs_are_reproducible() {
    let _guard = GUARD.lock().unwrap();
    let scale = Scale {
        n_keys: 8_000,
        ops: 40,
        ..Scale::smoke()
    };
    let jobs = parallel_jobs();
    let (rows_a, snap_a) = run_with_metrics(jobs, || experiments::fig2(&scale));
    let (rows_b, snap_b) = run_with_metrics(jobs, || experiments::fig2(&scale));
    assert_eq!(format!("{rows_a:?}"), format!("{rows_b:?}"));
    assert_eq!(snap_a, snap_b);
}

/// Same contract for the closed-loop serving sweep: the `dam-serve` engine
/// runs whole multi-client schedules per point (capture devices, shard
/// pagers, the PDAM step scheduler), so this is the determinism contract
/// for the entire serving stack, not just the sweep engine.
#[test]
fn serve_sweep_parallel_matches_serial_rows_and_metrics() {
    let _guard = GUARD.lock().unwrap();
    let scale = Scale {
        ops: 20,
        ..Scale::smoke()
    };
    let (serial_rows, serial_snap) = run_with_metrics(1, || experiments::serve_sweep(&scale));
    let jobs = parallel_jobs();
    let (par_rows, par_snap) = run_with_metrics(jobs, || experiments::serve_sweep(&scale));
    assert_eq!(
        format!("{serial_rows:?}"),
        format!("{par_rows:?}"),
        "serve_sweep rows diverged at jobs={jobs}"
    );
    assert_eq!(
        serial_snap, par_snap,
        "serve_sweep merged metrics snapshot diverged at jobs={jobs}"
    );
}
