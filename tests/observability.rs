//! End-to-end checks for the observability layer (`dam-obs`): exact span
//! IO attribution across all four dictionaries, model-residual ratios on
//! the default device profiles, deterministic snapshots, and agreement
//! with the checked-in metrics schema.

use refined_dam::obs::validate_snapshot_json;
use refined_dam::prelude::*;
use refined_dam::storage::profiles;

const NODE_BYTES: usize = 32 * 1024;
const CACHE_BYTES: u64 = 1 << 18;
const N_KEYS: u64 = 4_000;

fn key(i: u64) -> Vec<u8> {
    refined_dam::kv::key_from_u64(i).to_vec()
}

/// Build one of the four dictionaries on an observed RAM disk, with the
/// tree's internal spans reporting into `obs`.
fn build(structure: &str, obs: &Obs) -> Box<dyn Dictionary> {
    let dev = ObservedDevice::shared(
        Box::new(RamDisk::new(
            1 << 26,
            refined_dam::storage::SimDuration(50_000),
        )),
        obs.clone(),
    );
    match structure {
        "btree" => {
            let mut t = BTree::create(dev, BTreeConfig::new(NODE_BYTES, CACHE_BYTES)).unwrap();
            t.set_obs(obs.clone());
            Box::new(t)
        }
        "betree" => {
            let mut t =
                BeTree::create(dev, BeTreeConfig::sqrt_fanout(NODE_BYTES, 124, CACHE_BYTES))
                    .unwrap();
            t.set_obs(obs.clone());
            Box::new(t)
        }
        "optbetree" => {
            let mut t =
                OptBeTree::create(dev, OptConfig::balanced(NODE_BYTES, 124, CACHE_BYTES)).unwrap();
            t.set_obs(obs.clone());
            Box::new(t)
        }
        "lsm" => {
            let mut t = LsmTree::create(dev, LsmConfig::new(NODE_BYTES, CACHE_BYTES)).unwrap();
            t.set_obs(obs.clone());
            Box::new(t)
        }
        other => panic!("unknown structure {other}"),
    }
}

/// Preload outside any span, reset the registry, then run a mixed workload
/// entirely through [`ObservedDict`] root spans. Returns the snapshot.
fn run_observed(structure: &str, obs: &Obs) -> MetricsSnapshot {
    let mut dict = build(structure, obs);
    for i in 0..N_KEYS {
        dict.insert(&key(2 * i), &[(i % 251) as u8; 100]).unwrap();
    }
    dict.sync().unwrap();
    obs.reset();

    let mut od = ObservedDict::new(dict.as_mut(), structure, obs.clone());
    let mut gen = WorkloadGen::new(WorkloadConfig::uniform(N_KEYS, 0xBEE5));
    for _ in 0..300 {
        od.get(&key(2 * gen.next_index())).unwrap();
    }
    for _ in 0..100 {
        let i = 2 * gen.next_index() + 1;
        od.insert(&key(i), &gen.value_for(i)).unwrap();
    }
    for _ in 0..5 {
        let lo = 2 * gen.next_index();
        od.range(&key(lo), &key(lo + 64)).unwrap();
    }
    od.sync().unwrap();
    obs.snapshot()
}

#[test]
fn span_attribution_sums_to_device_totals_for_every_dictionary() {
    for structure in ["btree", "betree", "optbetree", "lsm"] {
        let obs = Obs::new();
        let snap = run_observed(structure, &obs);
        assert!(
            snap.device.ios > 0,
            "{structure}: workload never reached the device (cache too large?)"
        );
        // Every post-reset IO happened inside an ObservedDict root span, so
        // attribution must account for the device totals exactly.
        assert_eq!(
            snap.unattributed.ios, 0,
            "{structure}: IOs escaped span attribution"
        );
        assert_eq!(
            snap.attributed, snap.device,
            "{structure}: attributed tally diverged from device totals"
        );
        assert_eq!(
            snap.roots, snap.attributed,
            "{structure}: root-span cumulative tally diverged"
        );
        snap.check_io_consistency()
            .unwrap_or_else(|e| panic!("{structure}: {e}"));
        // The tree-internal level spans must have claimed device IO.
        assert!(
            !snap.levels.is_empty(),
            "{structure}: no per-level IO recorded"
        );
        let level_ios: u64 = snap.levels.values().map(|t| t.ios).sum();
        assert!(
            level_ios > 0 && level_ios <= snap.device.ios,
            "{structure}: per-level IOs {level_ios} vs device {}",
            snap.device.ios
        );
    }
}

/// Uniformly random block reads across the whole device: the regime both
/// model fits assume. Measured time over predicted time must be near 1.
fn residual_ratios(params: ModelParams, dev: Box<dyn BlockDevice>) -> (f64, f64, f64) {
    let obs = Obs::with_model(params);
    let mut od = refined_dam::obs::ObservedDevice::new(dev, obs.clone());
    let span = od.capacity_bytes() / 64 / 1024;
    let mut buf = vec![0u8; 64 * 1024];
    let mut now = SimTime::ZERO;
    let mut state = 0x2545F4914F6CDD1Du64;
    for _ in 0..200 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let offset = (state % span) * 64 * 1024;
        let c = od.read(offset, &mut buf, now).unwrap();
        now = c.complete;
    }
    let r = obs.snapshot().residual.expect("model installed, IOs seen");
    assert_eq!(r.ios, 200);
    (r.ratio_dam, r.ratio_affine, r.ratio_pdam)
}

#[test]
fn residual_ratios_track_the_models_on_default_profiles() {
    let hdd = profiles::toshiba_dt01aca050();
    let (dam, affine, pdam) = residual_ratios(
        ModelParams::from_hdd(&hdd),
        Box::new(HddDevice::new(hdd.clone(), 7)),
    );
    for (name, r) in [("dam", dam), ("affine", affine), ("pdam", pdam)] {
        assert!(
            (0.8..=1.25).contains(&r),
            "hdd {name} ratio {r} outside [0.8, 1.25]"
        );
    }

    let ssd = profiles::samsung_860_pro();
    let (dam, affine, pdam) = residual_ratios(
        ModelParams::from_ssd(&ssd),
        Box::new(SsdDevice::new(ssd.clone())),
    );
    for (name, r) in [("dam", dam), ("affine", affine), ("pdam", pdam)] {
        assert!(
            (0.8..=1.25).contains(&r),
            "ssd {name} ratio {r} outside [0.8, 1.25]"
        );
    }
}

#[test]
fn identical_runs_produce_byte_identical_snapshots() {
    let run = || {
        let obs = Obs::with_model(ModelParams::from_hdd(&profiles::toshiba_dt01aca050()));
        run_observed("betree", &obs).to_json()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "snapshot JSON is not deterministic");
    assert!(a.contains("\"residual\":"));
}

#[test]
fn real_snapshots_satisfy_the_checked_in_schema() {
    let schema = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/schemas/metrics_schema.json"
    ))
    .unwrap();
    for structure in ["btree", "lsm"] {
        let obs = Obs::with_model(ModelParams::from_hdd(&profiles::toshiba_dt01aca050()));
        let json = run_observed(structure, &obs).to_json();
        validate_snapshot_json(&json, &schema)
            .unwrap_or_else(|missing| panic!("{structure}: missing keys {missing:?}"));
    }
}
