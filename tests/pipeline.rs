//! End-to-end pipeline: profile a simulated device, fit the models, tune a
//! data structure from the fit, run it, and check that the models'
//! predictions line up with the measurements — the whole point of the
//! paper, in one test file.

use refined_dam::prelude::*;
use refined_dam::profiler::{fig1_thread_counts, table2_io_sizes};
use refined_dam::storage::profiles;

/// §4.2 → §5: fit α from microbenchmarks, then verify the fitted affine
/// model predicts B-tree query IO time within a small factor.
#[test]
fn fitted_affine_model_predicts_btree_costs() {
    let profile = profiles::wd_black_1tb_2011();
    // Step 1: profile.
    let report = profile_affine(
        || Box::new(HddDevice::new(profile.clone(), 3)),
        &table2_io_sizes(),
        48,
        9,
    )
    .unwrap();
    assert!(report.r2 > 0.99);
    let setup_s = report.setup_s;

    // Step 2: build a B-tree and measure a cold random query's IO time.
    let n_keys = 60_000u64;
    let node_bytes = 64 * 1024usize;
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..n_keys)
        .map(|i| (refined_dam::kv::key_from_u64(i).to_vec(), vec![7u8; 100]))
        .collect();
    let device = SharedDevice::new(Box::new(HddDevice::new(profile.clone(), 5)));
    let mut tree = BTree::bulk_load(device, BTreeConfig::new(node_bytes, 1 << 20), pairs).unwrap();
    tree.drop_cache().unwrap();
    let mut gen = WorkloadGen::new(WorkloadConfig::uniform(n_keys, 11));
    let mut measured_ms = 0.0;
    let mut measured_ios = 0u64;
    let ops = 50;
    for _ in 0..ops {
        let key = refined_dam::kv::key_from_u64(gen.next_index());
        tree.get(&key).unwrap();
        measured_ms += tree.last_op_cost().io_time_ms();
        measured_ios += tree.last_op_cost().ios;
        tree.drop_cache().unwrap(); // every query fully cold
    }
    let mean_ms = measured_ms / ops as f64;
    let mean_ios = measured_ios as f64 / ops as f64;

    // Step 3: the affine prediction: per-IO cost (1 + αB)·s, times the
    // measured IO count (the tree knows its height; the model the ratio).
    let predicted_ms = (1.0 + report.alpha_per_byte * node_bytes as f64) * setup_s * 1e3 * mean_ios;
    // Short-stroking (the data occupies a fraction of the disk) makes
    // realized seeks cheaper than the full-stroke fit, so the prediction is
    // an upper bound; it must be within a small constant.
    assert!(
        predicted_ms >= mean_ms * 0.8 && predicted_ms <= mean_ms * 4.0,
        "predicted {predicted_ms} ms vs measured {mean_ms} ms ({mean_ios} IOs/op)"
    );
}

/// §4.1 → §2.2: fit P from the thread sweep, then check the PDAM's
/// closed-loop prediction formula against fresh runs at untested thread
/// counts.
#[test]
fn fitted_pdam_predicts_closed_loop_times() {
    let profile = profiles::sandisk_ultra_ii();
    let report = profile_pdam(
        || Box::new(SsdDevice::new(profile.clone())),
        &fig1_thread_counts(),
        200,
        64 * 1024,
        21,
    )
    .unwrap();
    let pdam = Pdam::new(report.p, 64.0 * 1024.0);

    // Fresh measurement at p = 24 (not in the fitted sweep).
    let mut device = SsdDevice::new(profile.clone());
    let cfg = ClosedLoopConfig::random_reads(24, 200, 64 * 1024, 99);
    let measured = run_closed_loop(&mut device, &cfg)
        .unwrap()
        .makespan
        .as_secs_f64();

    // PDAM prediction: steps × per-IO time; per-IO time from the fitted
    // flat level.
    let per_io_s = report.fit.flat_level / 200.0;
    let predicted = pdam.closed_loop_steps(24.0, 200.0) * per_io_s;
    let err = (predicted - measured).abs() / measured;
    // The paper reports error "never more than 14%" for this prediction.
    assert!(
        err < 0.2,
        "predicted {predicted}s vs measured {measured}s (err {err})"
    );
}

/// Tuning consistency: the Corollary 7 node size really is better for
/// point queries than nodes 16× larger, on the real (simulated) tree.
#[test]
fn corollary7_tuning_beats_oversized_nodes() {
    let profile = profiles::toshiba_dt01aca050();
    let affine = Affine::new(profile.alpha_per_byte());
    let shape = DictShape::new(60_000.0, 2_000.0, 116.0, 24.0);
    let tuned = refined_dam::models::btree_costs::point_op_optimal_node_bytes(&affine, &shape);
    // Clamp to a power of two within the sweep range.
    let tuned_b = (tuned as usize).next_power_of_two().clamp(4096, 1 << 20);
    let oversized_b = (tuned_b * 16).min(4 << 20);

    let run = |node_bytes: usize| {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..60_000u64)
            .map(|i| (refined_dam::kv::key_from_u64(i).to_vec(), vec![1u8; 100]))
            .collect();
        let device = SharedDevice::new(Box::new(HddDevice::new(profile.clone(), 13)));
        let mut tree =
            BTree::bulk_load(device, BTreeConfig::new(node_bytes, 1 << 20), pairs).unwrap();
        let mut gen = WorkloadGen::new(WorkloadConfig::uniform(60_000, 5));
        let mut total = 0.0;
        for _ in 0..60 {
            tree.drop_cache().unwrap();
            let key = refined_dam::kv::key_from_u64(gen.next_index());
            tree.get(&key).unwrap();
            total += tree.last_op_cost().io_time_ms();
        }
        total / 60.0
    };

    let at_tuned = run(tuned_b);
    let at_oversized = run(oversized_b);
    assert!(
        at_tuned < at_oversized,
        "tuned {tuned_b}B: {at_tuned} ms should beat oversized {oversized_b}B: {at_oversized} ms"
    );
}

/// The full stack is deterministic: an identical pipeline run yields
/// bit-identical profiles.
#[test]
fn pipeline_is_deterministic() {
    let run = || {
        profile_affine(
            || Box::new(HddDevice::new(profiles::seagate_250gb_2006(), 17)),
            &table2_io_sizes(),
            16,
            4,
        )
        .unwrap()
    };
    assert_eq!(run(), run());
}
