//! Failure injection through the full stack: device faults must surface as
//! typed `KvError::Storage` errors from every dictionary — never panics,
//! never silent corruption — and read-path faults must leave the structure
//! fully usable once the fault clears.

use refined_dam::prelude::*;
use refined_dam::storage::{FaultInjector, FaultMode, FaultSwitch, RamDisk};

fn faulty_device() -> (SharedDevice, FaultSwitch) {
    let (inj, switch) = FaultInjector::new(RamDisk::new(1 << 26, SimDuration(100)));
    (SharedDevice::new(Box::new(inj)), switch)
}

fn preload(dict: &mut dyn Dictionary, n: u64) {
    for i in 0..n {
        let k = refined_dam::kv::key_from_u64(i);
        dict.insert(&k, &[(i % 251) as u8; 50]).unwrap();
    }
    dict.sync().unwrap();
}

fn check_read_fault_recovery(mut dict: Box<dyn Dictionary>, switch: FaultSwitch, label: &str) {
    preload(dict.as_mut(), 2_000);
    // Cold cache so queries must touch the device.
    // (sync above flushed; now fail all reads.)
    switch.set(FaultMode::Reads);
    let key = refined_dam::kv::key_from_u64(1_234);
    // Some reads may be served from cache; force enough traffic that the
    // device is hit.
    let mut saw_error = false;
    for i in 0..2_000u64 {
        let k = refined_dam::kv::key_from_u64((i * 37) % 2_000);
        match dict.get(&k) {
            Ok(_) => {}
            Err(KvError::Storage(_)) => {
                saw_error = true;
                break;
            }
            Err(other) => panic!("{label}: unexpected error kind: {other}"),
        }
    }
    assert!(saw_error, "{label}: read fault never surfaced");
    // Clear the fault: everything works again and data is intact.
    switch.set(FaultMode::None);
    let got = dict.get(&key).unwrap();
    assert_eq!(got, Some(vec![(1_234 % 251) as u8; 50]), "{label}: data lost after fault");
    let all = dict.range(&[], &[0xFF; 17]).unwrap();
    assert_eq!(all.len(), 2_000, "{label}: range after recovery");
}

#[test]
fn btree_read_faults_surface_and_recover() {
    let (dev, switch) = faulty_device();
    let tree = BTree::create(dev, BTreeConfig::new(4096, 1 << 16)).unwrap();
    check_read_fault_recovery(Box::new(tree), switch, "btree");
}

#[test]
fn betree_read_faults_surface_and_recover() {
    let (dev, switch) = faulty_device();
    let tree = BeTree::create(dev, BeTreeConfig::new(4096, 4, 1 << 16)).unwrap();
    check_read_fault_recovery(Box::new(tree), switch, "betree");
}

#[test]
fn opt_betree_read_faults_surface_and_recover() {
    let (dev, switch) = faulty_device();
    let tree = OptBeTree::create(dev, OptConfig::new(4, 1024, 1 << 16)).unwrap();
    check_read_fault_recovery(Box::new(tree), switch, "opt-betree");
}

#[test]
fn lsm_read_faults_surface_and_recover() {
    let (dev, switch) = faulty_device();
    let mut cfg = LsmConfig::new(4096, 1 << 16);
    cfg.block_bytes = 512;
    let tree = LsmTree::create(dev, cfg).unwrap();
    check_read_fault_recovery(Box::new(tree), switch, "lsm");
}

#[test]
fn write_faults_surface_as_storage_errors() {
    let (dev, switch) = faulty_device();
    let mut tree = BTree::create(dev, BTreeConfig::new(1024, 1 << 12)).unwrap();
    // Tiny cache: inserts must evict (write) soon after the fault arms.
    switch.set(FaultMode::Writes);
    let mut saw_error = false;
    for i in 0..10_000u64 {
        let k = refined_dam::kv::key_from_u64(i);
        match tree.insert(&k, &[1u8; 100]) {
            Ok(()) => {}
            Err(KvError::Storage(_)) => {
                saw_error = true;
                break;
            }
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
    assert!(saw_error, "write fault never surfaced");
}

#[test]
fn profiler_propagates_device_faults() {
    use refined_dam::profiler::{profile_affine, table2_io_sizes, ProfileError};
    let result = profile_affine(
        || {
            let (inj, switch) = FaultInjector::new(RamDisk::new(1 << 26, SimDuration(100)));
            switch.set(FaultMode::All);
            Box::new(inj)
        },
        &table2_io_sizes(),
        8,
        1,
    );
    assert!(matches!(result, Err(ProfileError::Io(_))), "got {result:?}");
}
