//! Failure injection through the full stack: device faults must surface as
//! typed `KvError` errors from every dictionary — never panics, never
//! silent corruption — and faults must leave the structure fully usable
//! once they clear.
//!
//! Coverage: hard read/write faults, countdown (`AfterIos`) faults,
//! intermittent (`Transient`) faults absorbed by [`RetryingDevice`], torn
//! writes repaired by re-flush, and silent bit rot caught by the
//! checksummed block frames as `KvError::Corrupt`.

use refined_dam::prelude::*;
use refined_dam::storage::{
    FaultInjector, FaultMode, FaultSwitch, RamDisk, RetryPolicy, RetryingDevice,
};

fn faulty_device() -> (SharedDevice, FaultSwitch) {
    let (inj, switch) = FaultInjector::new(RamDisk::new(1 << 26, SimDuration(100)));
    (SharedDevice::new(Box::new(inj)), switch)
}

fn preload(dict: &mut dyn Dictionary, n: u64) {
    for i in 0..n {
        let k = refined_dam::kv::key_from_u64(i);
        dict.insert(&k, &[(i % 251) as u8; 50]).unwrap();
    }
    dict.sync().unwrap();
}

fn check_read_fault_recovery(mut dict: Box<dyn Dictionary>, switch: FaultSwitch, label: &str) {
    preload(dict.as_mut(), 2_000);
    // Cold cache so queries must touch the device.
    // (sync above flushed; now fail all reads.)
    switch.set(FaultMode::Reads);
    let key = refined_dam::kv::key_from_u64(1_234);
    // Some reads may be served from cache; force enough traffic that the
    // device is hit.
    let mut saw_error = false;
    for i in 0..2_000u64 {
        let k = refined_dam::kv::key_from_u64((i * 37) % 2_000);
        match dict.get(&k) {
            Ok(_) => {}
            Err(KvError::Storage(_)) => {
                saw_error = true;
                break;
            }
            Err(other) => panic!("{label}: unexpected error kind: {other}"),
        }
    }
    assert!(saw_error, "{label}: read fault never surfaced");
    // Clear the fault: everything works again and data is intact.
    switch.set(FaultMode::None);
    let got = dict.get(&key).unwrap();
    assert_eq!(
        got,
        Some(vec![(1_234 % 251) as u8; 50]),
        "{label}: data lost after fault"
    );
    let all = dict.range(&[], &[0xFF; 17]).unwrap();
    assert_eq!(all.len(), 2_000, "{label}: range after recovery");
}

#[test]
fn btree_read_faults_surface_and_recover() {
    let (dev, switch) = faulty_device();
    let tree = BTree::create(dev, BTreeConfig::new(4096, 1 << 16)).unwrap();
    check_read_fault_recovery(Box::new(tree), switch, "btree");
}

#[test]
fn betree_read_faults_surface_and_recover() {
    let (dev, switch) = faulty_device();
    let tree = BeTree::create(dev, BeTreeConfig::new(4096, 4, 1 << 16)).unwrap();
    check_read_fault_recovery(Box::new(tree), switch, "betree");
}

#[test]
fn opt_betree_read_faults_surface_and_recover() {
    let (dev, switch) = faulty_device();
    let tree = OptBeTree::create(dev, OptConfig::new(4, 1024, 1 << 16)).unwrap();
    check_read_fault_recovery(Box::new(tree), switch, "opt-betree");
}

#[test]
fn lsm_read_faults_surface_and_recover() {
    let (dev, switch) = faulty_device();
    let mut cfg = LsmConfig::new(4096, 1 << 16);
    cfg.block_bytes = 512;
    let tree = LsmTree::create(dev, cfg).unwrap();
    check_read_fault_recovery(Box::new(tree), switch, "lsm");
}

#[test]
fn write_faults_surface_as_storage_errors() {
    let (dev, switch) = faulty_device();
    let mut tree = BTree::create(dev, BTreeConfig::new(1024, 1 << 12)).unwrap();
    // Tiny cache: inserts must evict (write) soon after the fault arms.
    switch.set(FaultMode::Writes);
    let mut saw_error = false;
    for i in 0..10_000u64 {
        let k = refined_dam::kv::key_from_u64(i);
        match tree.insert(&k, &[1u8; 100]) {
            Ok(()) => {}
            Err(KvError::Storage(_)) => {
                saw_error = true;
                break;
            }
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
    assert!(saw_error, "write fault never surfaced");
    assert!(switch.stats().faults_injected >= 1);
}

/// Write faults during `sync` surface as `KvError::Storage`, the dirty
/// pages stay cached, and a retried `sync` after the fault clears commits
/// everything — no data loss, no panic.
fn check_write_fault_recovery(mut dict: Box<dyn Dictionary>, switch: FaultSwitch, label: &str) {
    // Cache is large enough that inserts alone do no device IO; all
    // writes happen inside sync.
    for i in 0..500u64 {
        let k = refined_dam::kv::key_from_u64(i);
        dict.insert(&k, &[(i % 251) as u8; 50]).unwrap();
    }
    switch.set(FaultMode::Writes);
    match dict.sync() {
        Err(KvError::Storage(_)) => {}
        Err(other) => panic!("{label}: unexpected error kind: {other}"),
        Ok(()) => panic!("{label}: sync succeeded with writes failing"),
    }
    let stats = switch.stats();
    assert!(stats.faults_injected >= 1, "{label}: no faults counted");
    assert!(
        stats.ios_seen >= stats.faults_injected,
        "{label}: counter skew"
    );
    // Fault clears: the retried sync must commit and the data survive.
    switch.set(FaultMode::None);
    dict.sync()
        .unwrap_or_else(|e| panic!("{label}: retried sync failed: {e}"));
    let all = dict.range(&[], &[0xFF; 17]).unwrap();
    assert_eq!(all.len(), 500, "{label}: data lost across failed sync");
}

#[test]
fn btree_write_fault_recovery() {
    let (dev, switch) = faulty_device();
    let tree = BTree::create(dev, BTreeConfig::new(4096, 1 << 20)).unwrap();
    check_write_fault_recovery(Box::new(tree), switch, "btree");
}

#[test]
fn betree_write_fault_recovery() {
    let (dev, switch) = faulty_device();
    let tree = BeTree::create(dev, BeTreeConfig::new(4096, 4, 1 << 20)).unwrap();
    check_write_fault_recovery(Box::new(tree), switch, "betree");
}

#[test]
fn opt_betree_write_fault_recovery() {
    let (dev, switch) = faulty_device();
    let tree = OptBeTree::create(dev, OptConfig::new(4, 1024, 1 << 20)).unwrap();
    check_write_fault_recovery(Box::new(tree), switch, "opt-betree");
}

#[test]
fn lsm_write_fault_recovery() {
    let (dev, switch) = faulty_device();
    let mut cfg = LsmConfig::new(4096, 1 << 20);
    cfg.block_bytes = 512;
    let tree = LsmTree::create(dev, cfg).unwrap();
    check_write_fault_recovery(Box::new(tree), switch, "lsm");
}

/// `AfterIos(k)`: the structure works until IO #k, then every operation
/// fails with a typed error; clearing the fault restores full service.
fn check_after_ios_recovery(mut dict: Box<dyn Dictionary>, switch: FaultSwitch, label: &str) {
    for i in 0..500u64 {
        let k = refined_dam::kv::key_from_u64(i);
        dict.insert(&k, &[(i % 251) as u8; 50]).unwrap();
    }
    // Let the first sync IO through, then cut the cord mid-flush. Every
    // dictionary's sync takes at least two IOs (data + superblock).
    switch.set(FaultMode::AfterIos(1));
    match dict.sync() {
        Err(KvError::Storage(_)) => {}
        Err(other) => panic!("{label}: unexpected error kind: {other}"),
        Ok(()) => panic!("{label}: sync finished in a single IO"),
    }
    let stats = switch.stats();
    assert!(stats.ios_seen > 1, "{label}: fault fired too early");
    assert!(stats.faults_injected >= 1, "{label}: no faults counted");
    switch.set(FaultMode::None);
    dict.sync()
        .unwrap_or_else(|e| panic!("{label}: retried sync failed: {e}"));
    let all = dict.range(&[], &[0xFF; 17]).unwrap();
    assert_eq!(all.len(), 500, "{label}: data lost across partial flush");
}

#[test]
fn btree_after_ios_recovery() {
    let (dev, switch) = faulty_device();
    let tree = BTree::create(dev, BTreeConfig::new(4096, 1 << 20)).unwrap();
    check_after_ios_recovery(Box::new(tree), switch, "btree");
}

#[test]
fn betree_after_ios_recovery() {
    let (dev, switch) = faulty_device();
    let tree = BeTree::create(dev, BeTreeConfig::new(4096, 4, 1 << 20)).unwrap();
    check_after_ios_recovery(Box::new(tree), switch, "betree");
}

#[test]
fn opt_betree_after_ios_recovery() {
    let (dev, switch) = faulty_device();
    let tree = OptBeTree::create(dev, OptConfig::new(4, 1024, 1 << 20)).unwrap();
    check_after_ios_recovery(Box::new(tree), switch, "opt-betree");
}

#[test]
fn lsm_after_ios_recovery() {
    let (dev, switch) = faulty_device();
    let mut cfg = LsmConfig::new(4096, 1 << 20);
    cfg.block_bytes = 512;
    let tree = LsmTree::create(dev, cfg).unwrap();
    check_after_ios_recovery(Box::new(tree), switch, "lsm");
}

#[test]
fn transient_faults_absorbed_by_retrying_device() {
    // Stack: BTree → pager → RetryingDevice → FaultInjector → RamDisk.
    // One fault then three passes, every cycle: each faulted IO succeeds
    // on the first retry, so the dictionary never sees an error at all.
    let (inj, switch) = FaultInjector::new(RamDisk::new(1 << 26, SimDuration(100)));
    let policy = RetryPolicy {
        max_retries: 4,
        base_backoff: SimDuration(1_000),
    };
    let (retrying, handle) = RetryingDevice::new(inj, policy);
    let dev = SharedDevice::new(Box::new(retrying));
    switch.set(FaultMode::Transient {
        fail_n: 1,
        pass_n: 3,
    });

    let mut tree = BTree::create(dev, BTreeConfig::new(4096, 1 << 16)).unwrap();
    for i in 0..2_000u64 {
        let k = refined_dam::kv::key_from_u64(i);
        tree.insert(&k, &[(i % 251) as u8; 50]).unwrap();
    }
    tree.sync().unwrap();
    tree.drop_cache().unwrap();
    for i in (0..2_000u64).step_by(97) {
        let k = refined_dam::kv::key_from_u64(i);
        assert_eq!(tree.get(&k).unwrap(), Some(vec![(i % 251) as u8; 50]));
    }
    let retry = handle.stats();
    assert!(retry.absorbed > 0, "no faults were absorbed: {retry:?}");
    assert_eq!(
        retry.giveups, 0,
        "transient faults should never give up: {retry:?}"
    );
    assert!(retry.retries >= retry.absorbed);
    assert!(switch.stats().faults_injected > 0, "injector never fired");
}

#[test]
fn torn_writes_error_then_repair_on_reflush() {
    let (dev, switch) = faulty_device();
    let mut tree = BTree::create(dev, BTreeConfig::new(4096, 1 << 20)).unwrap();
    for i in 0..500u64 {
        let k = refined_dam::kv::key_from_u64(i);
        tree.insert(&k, &[(i % 251) as u8; 50]).unwrap();
    }
    // Every write persists only half its bytes and reports failure.
    switch.set(FaultMode::TornWrite);
    assert!(
        matches!(tree.sync(), Err(KvError::Storage(_))),
        "torn write must error"
    );
    assert!(switch.stats().faults_injected >= 1);
    // The failed pages are still dirty in cache: a clean re-flush
    // overwrites every torn block with the full image.
    switch.set(FaultMode::None);
    tree.sync().unwrap();
    tree.drop_cache().unwrap();
    for i in (0..500u64).step_by(29) {
        let k = refined_dam::kv::key_from_u64(i);
        assert_eq!(
            tree.get(&k).unwrap(),
            Some(vec![(i % 251) as u8; 50]),
            "torn block not repaired for key {i}"
        );
    }
}

#[test]
fn bit_rot_is_caught_by_checksums_not_returned() {
    let (dev, switch) = faulty_device();
    let mut tree = BTree::create(dev, BTreeConfig::new(4096, 1 << 16)).unwrap();
    for i in 0..2_000u64 {
        let k = refined_dam::kv::key_from_u64(i);
        tree.insert(&k, &[(i % 251) as u8; 50]).unwrap();
    }
    tree.sync().unwrap();
    tree.drop_cache().unwrap();
    // Every device read comes back with one silently flipped bit — the
    // device reports success, only the frame checksum can tell.
    switch.set(FaultMode::BitFlip {
        seed: 0xDA7A,
        every: 1,
    });
    let k = refined_dam::kv::key_from_u64(1_234);
    match tree.get(&k) {
        Err(KvError::Corrupt(_)) => {}
        Ok(v) => panic!("silent corruption returned as data: {v:?}"),
        Err(other) => panic!("unexpected error kind: {other}"),
    }
    assert!(switch.stats().faults_injected >= 1);
    // Rot stops; drop the poisoned cache and everything reads clean.
    switch.set(FaultMode::None);
    tree.drop_cache().unwrap();
    assert_eq!(tree.get(&k).unwrap(), Some(vec![(1_234 % 251) as u8; 50]));
    assert_eq!(tree.range(&[], &[0xFF; 17]).unwrap().len(), 2_000);
}

#[test]
fn profiler_propagates_device_faults() {
    use refined_dam::profiler::{profile_affine, table2_io_sizes, ProfileError};
    let result = profile_affine(
        || {
            let (inj, switch) = FaultInjector::new(RamDisk::new(1 << 26, SimDuration(100)));
            switch.set(FaultMode::All);
            Box::new(inj)
        },
        &table2_io_sizes(),
        8,
        1,
    );
    assert!(matches!(result, Err(ProfileError::Io(_))), "got {result:?}");
}
