//! Differential seed corpus: deterministic replays of the `dam-check`
//! harness that pin the cross-structure dictionary contract in CI.
//!
//! Two kinds of tests live here. The corpus tests run the full check
//! (plain + fault-injection + crash sweep) at a bounded size over fixed
//! seeds, so any semantic drift between the four dictionaries and the
//! `BTreeMap` oracle fails fast. The reproducer tests replay the exact
//! seed/mode pairs that exposed real bugs during development — they are
//! regression tests for fixes whose minimal trigger is a whole fault
//! schedule rather than a handful of ops.

use dam_check::{
    check, generate_trace, replay, replay_concurrent, CheckConfig, Mode, Op, Structure,
};

#[test]
fn seed_corpus_all_modes() {
    for seed in [1, 42, 1337] {
        let cfg = CheckConfig {
            seed,
            ops: 600,
            crash_trace_ops: 300,
            crash_points: 2,
            ..CheckConfig::default()
        };
        if let Err(f) = check(&cfg) {
            panic!("seed {seed}: {f}");
        }
    }
}

#[test]
fn optbetree_surfaced_fault_reproducer() {
    // Regression: with exactly this trace and fault schedule, a fault
    // surfaced mid-flush used to (a) drop a whole buffer of acknowledged
    // updates (len diverged at op 3268) and, once that was fixed, (b)
    // leave a descriptor out of sync with its committed node image, so a
    // later range() returned a stale key and missed a live one (op 3533).
    // Fixed by making pager writes always apply to the cache, reinstating
    // dirty eviction victims on writeback failure, and committing flush
    // splits atomically (siblings written before the parent, descriptor
    // restored only when nothing committed).
    let trace = generate_trace(42, 5000);
    let mode = Mode::FaultsSurfaced { seed: 42 ^ 0xFA17 };
    if let Err(f) = replay(mode, &[Structure::OptBeTree], &trace) {
        panic!("reproducer regressed: {f}");
    }
}

#[test]
fn betree_surfaced_fault_reproducer() {
    // Regression: in the standard Bε-tree, a fault surfaced while
    // cascading a buffer flush used to drop the child splits returned by
    // the failed call (they only travelled on the `Ok` path), leaving a
    // freshly written sibling unreachable and the in-memory key count
    // stale (len diverged by one at op 37248 of this trace). Fixed by
    // threading splits through an out-parameter with commit tracking, so
    // error paths adopt committed siblings before reporting the fault.
    let trace = generate_trace(42, 50000);
    let mode = Mode::FaultsSurfaced { seed: 42 ^ 0xFA17 };
    if let Err(f) = replay(mode, &[Structure::BeTree], &trace) {
        panic!("reproducer regressed: {f}");
    }
}

#[test]
fn final_audit_redrives_surfaced_faults() {
    // Regression: the end-of-run state audit used to treat a surfaced
    // (injected) storage error from its own range()/len() calls as a
    // failure instead of redriving it like any other idempotent op.
    // Seed 7's fault schedule lands a fault exactly there.
    let trace = generate_trace(7, 5000);
    let mode = Mode::FaultsSurfaced { seed: 7 ^ 0xFA17 };
    if let Err(f) = replay(mode, &[Structure::OptBeTree], &trace) {
        panic!("reproducer regressed: {f}");
    }
}

#[test]
fn concurrent_group_commit_reproducer() {
    // Regression guard for the serving engine's group commit: seed 42's
    // trace mixes writes and reads to the same keys densely enough that,
    // dealt over 3 clients, a read regularly admits in the same round as a
    // buffered write to its target shard. The engine must flush that
    // shard's write batch before executing the read (the batch is shared —
    // "group commit" — and the read's answer must reflect every write
    // admitted before it in client-id order), or the commit log diverges
    // from the serial oracle. Sharding (S=2) additionally exercises the
    // routing: a flush of the read's shard must not reorder ops bound for
    // the other shard.
    let trace = generate_trace(42, 900);
    for s in Structure::ALL {
        if let Err(f) = replay_concurrent(s, 3, 2, &trace) {
            panic!("group-commit reproducer regressed: {f}");
        }
    }
}

#[test]
fn concurrent_barrier_ops_reproducer() {
    // Regression guard for the engine's barrier ops: seed 1337's trace is
    // dense in Range / Len / Sync, which fan out across every shard and
    // must observe all previously admitted writes on all shards — a
    // partial flush (only the "current" shard) used to be the natural bug
    // shape during development. k=5 > shards=3 also forces several clients
    // to share a shard within one admission round, so per-shard batches
    // carry ops from multiple clients and every contributor must commit
    // exactly once when the shared chain completes.
    let trace = generate_trace(1337, 900);
    for s in Structure::ALL {
        if let Err(f) = replay_concurrent(s, 5, 3, &trace) {
            panic!("barrier reproducer regressed: {f}");
        }
    }
}

#[test]
fn degenerate_ranges_empty_across_structures() {
    // Satellite regression: range(start, end) with start >= end must be
    // empty-and-Ok for every structure, including around live keys.
    let mut trace = vec![
        Op::Insert {
            key: b"k1".to_vec(),
            value: b"v1".to_vec(),
        },
        Op::Insert {
            key: b"k3".to_vec(),
            value: b"v3".to_vec(),
        },
        Op::Sync,
    ];
    for (s, e) in [
        (&b"k1"[..], &b"k1"[..]),
        (b"k3", b"k1"),
        (b"z", b"a"),
        (b"", b""),
        (b"k2", b"k2"),
    ] {
        trace.push(Op::Range {
            start: s.to_vec(),
            end: e.to_vec(),
        });
    }
    trace.push(Op::Len);
    if let Err(f) = replay(Mode::Plain, &Structure::ALL, &trace) {
        panic!("degenerate ranges diverged: {f}");
    }
}
