//! Experiment smoke tests: run every table/figure regenerator at a reduced
//! scale and assert the *shape* properties the paper reports — who wins, by
//! roughly what factor, where the knees and crossovers fall.

use dam_bench::experiments;
use dam_bench::Scale;

fn scale() -> Scale {
    Scale::smoke()
}

#[test]
fn table1_fits_land_near_paper_values() {
    let rows = experiments::fig1_and_table1(&scale());
    let paper = [(3.3, 530.0), (5.5, 2500.0), (2.9, 260.0), (4.6, 520.0)];
    for (row, (p, sat)) in rows.iter().zip(paper) {
        assert!(
            (row.p - p).abs() < 0.8,
            "{}: fitted P {} vs paper {p}",
            row.device,
            row.p
        );
        assert!(
            (row.saturation_mb_s - sat).abs() / sat < 0.15,
            "{}: saturation {} vs paper {sat}",
            row.device,
            row.saturation_mb_s
        );
        assert!(row.r2 > 0.99, "{}: R² {}", row.device, row.r2);
    }
}

#[test]
fn fig1_series_flat_then_linear() {
    let rows = experiments::fig1_and_table1(&scale());
    for row in rows {
        let t = |p: usize| row.series.iter().find(|&&(x, _)| x == p).unwrap().1;
        // Flat start: doubling 1 → 2 threads costs < 25% more time.
        assert!(
            t(2) < 1.25 * t(1),
            "{}: t2/t1 = {}",
            row.device,
            t(2) / t(1)
        );
        // Linear tail: 64 threads ≈ 2× of 32 threads.
        let tail = t(64) / t(32);
        assert!(
            (1.7..2.3).contains(&tail),
            "{}: t64/t32 = {tail}",
            row.device
        );
    }
}

#[test]
fn table2_fits_match_paper_alphas() {
    let rows = experiments::table2(&scale());
    for row in rows {
        assert!(
            (row.alpha - row.paper_alpha).abs() / row.paper_alpha < 0.25,
            "{}: alpha {} vs paper {}",
            row.disk,
            row.alpha,
            row.paper_alpha
        );
        assert!(row.r2 > 0.99, "{}: R² {}", row.disk, row.r2);
    }
}

#[test]
fn table3_btree_most_sensitive() {
    let r = experiments::table3();
    assert!(r.summary.btree_growth > 3.0 * r.summary.betree_insert_growth);
    assert!(r.summary.btree_growth > 3.0 * r.summary.betree_query_growth);
    // The optimized Bε query barely grows (or shrinks) with node size.
    assert!(r.summary.betree_query_growth < 2.0);
}

#[test]
fn fig2_and_fig3_sensitivity_contrast() {
    let s = scale();
    let fig2 = experiments::fig2(&s);
    let fig3 = experiments::fig3(&s);
    // B-tree: cost at the largest node size is several times the minimum.
    let b_min = fig2
        .iter()
        .map(|p| p.query_ms)
        .fold(f64::INFINITY, f64::min);
    let b_last = fig2.last().unwrap().query_ms;
    let btree_growth = b_last / b_min;
    // Bε-tree: flat by comparison.
    let e_min = fig3
        .iter()
        .map(|p| p.query_ms)
        .fold(f64::INFINITY, f64::min);
    let e_last = fig3.last().unwrap().query_ms;
    let betree_growth = e_last / e_min;
    assert!(
        btree_growth > 1.5 * betree_growth,
        "btree growth {btree_growth} vs betree growth {betree_growth}"
    );
    // Bε inserts are far cheaper than B-tree inserts at every node size.
    for (b, e) in fig2.iter().rev().zip(fig3.iter().rev()) {
        assert!(
            e.insert_ms < b.insert_ms / 5.0,
            "betree insert {} should be far below btree insert {} at {}B/{}B",
            e.insert_ms,
            b.insert_ms,
            e.node_bytes,
            b.node_bytes
        );
    }
}

#[test]
fn lemma1_bound_holds_everywhere() {
    for row in experiments::lemma1(&scale()) {
        assert!(row.holds, "{}: factor {}", row.trace, row.error_factor);
        assert!((0.5..=2.0).contains(&row.error_factor), "{}", row.trace);
    }
}

#[test]
fn thm9_optimized_wins_queries_without_losing_inserts() {
    let rows = experiments::thm9_ablation(&scale());
    let std_row = &rows[0];
    let opt_row = &rows[1];
    assert!(
        opt_row.query_ms < std_row.query_ms,
        "optimized query {} should beat standard {}",
        opt_row.query_ms,
        std_row.query_ms
    );
    assert!(
        opt_row.query_bytes * 10.0 < std_row.query_bytes,
        "optimized reads {} bytes/op vs standard {}",
        opt_row.query_bytes,
        std_row.query_bytes
    );
    // Inserts stay within a small factor.
    assert!(opt_row.insert_ms < 10.0 * std_row.insert_ms.max(0.01));
}

#[test]
fn lemma13_veb_adapts_across_client_counts() {
    let rows = experiments::lemma13(&scale());
    // Throughput rises with k for the vEB design.
    for w in rows.windows(2) {
        assert!(w[1].fat_veb > w[0].fat_veb);
    }
    let k1 = &rows[0];
    let kp = rows.last().unwrap();
    // k = 1: fat vEB beats small nodes (single client exploits read-ahead).
    assert!(
        k1.fat_veb > k1.small_nodes,
        "{} vs {}",
        k1.fat_veb,
        k1.small_nodes
    );
    // vEB beats the sorted layout at every k.
    for r in &rows {
        assert!(
            r.fat_veb > r.fat_sorted,
            "k={}: {} vs {}",
            r.clients,
            r.fat_veb,
            r.fat_sorted
        );
    }
    // k = P: within 2x of the small-node optimum.
    assert!(kp.fat_veb > kp.small_nodes / 2.0);
}

#[test]
fn corollary_optima_are_ordered() {
    for row in experiments::corollary_optima() {
        assert!(row.btree_point < row.half_bandwidth, "{}", row.disk);
        assert!(row.betree_node > 10.0 * row.half_bandwidth, "{}", row.disk);
        assert!(row.insert_speedup > 3.0, "{}", row.disk);
    }
}

#[test]
fn write_amp_hierarchy() {
    let rows = experiments::write_amp(&scale());
    let btree = &rows[0];
    let betree = &rows[1];
    assert!(
        btree.measured > 20.0 * betree.measured,
        "btree WA {} vs betree WA {}",
        btree.measured,
        betree.measured
    );
    // B-tree measurement within a factor of 3 of the Θ(B) model.
    assert!(btree.measured > btree.predicted / 3.0 && btree.measured < btree.predicted * 3.0);
}

#[test]
fn experiments_are_deterministic() {
    let s = scale();
    assert_eq!(experiments::table2(&s), experiments::table2(&s));
    assert_eq!(experiments::lemma13(&s), experiments::lemma13(&s));
    assert_eq!(experiments::fig2(&s), experiments::fig2(&s));
}

#[test]
fn lsm_sweep_shows_the_leveldb_story() {
    let rows = experiments::lsm_sstable_size(&scale());
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    // Inserts get much cheaper with bigger SSTables...
    assert!(
        last.insert_ms * 5.0 < first.insert_ms,
        "insert {} -> {} should fall steeply",
        first.insert_ms,
        last.insert_ms
    );
    assert!(last.write_amp < first.write_amp, "WA should fall");
    // ...while queries barely move.
    let q_min = rows
        .iter()
        .map(|p| p.query_ms)
        .fold(f64::INFINITY, f64::min);
    let q_max = rows.iter().map(|p| p.query_ms).fold(0.0f64, f64::max);
    assert!(
        q_max < 2.0 * q_min,
        "query range [{q_min}, {q_max}] should be flat"
    );
}

#[test]
fn wod_comparison_hierarchy() {
    let rows = experiments::wod_comparison(&scale());
    let btree = &rows[0];
    for wod in &rows[1..] {
        assert!(
            wod.insert_ms < btree.insert_ms / 2.0,
            "{}: insert {} should be well below the B-tree's {}",
            wod.structure,
            wod.insert_ms,
            btree.insert_ms
        );
        assert!(
            wod.query_ms < 2.5 * btree.query_ms,
            "{}: query {} should be near the B-tree's {}",
            wod.structure,
            wod.query_ms,
            btree.query_ms
        );
    }
}

#[test]
fn aging_degrades_scans_not_points() {
    let rows = experiments::aging(&scale());
    let fresh = &rows[0];
    let aged = &rows[1];
    assert!(
        fresh.scan_mb_s > 3.0 * aged.scan_mb_s,
        "fresh scan {} MB/s should dwarf aged {} MB/s",
        fresh.scan_mb_s,
        aged.scan_mb_s
    );
    // Point queries barely change (random access was always seek-bound).
    let ratio = aged.point_ms / fresh.point_ms;
    assert!((0.5..2.0).contains(&ratio), "point ratio {ratio}");
}

#[test]
fn oltp_and_olap_optima_diverge() {
    let rows = experiments::oltp_olap(&scale());
    // Best node size for points...
    let best_point = rows
        .iter()
        .min_by(|a, b| a.point_ms.total_cmp(&b.point_ms))
        .unwrap()
        .node_bytes;
    // ...and for scans.
    let best_scan = rows
        .iter()
        .max_by(|a, b| a.scan_mb_s.total_cmp(&b.scan_mb_s))
        .unwrap()
        .node_bytes;
    assert!(
        best_scan >= 16 * best_point,
        "scan optimum {best_scan} should be far above point optimum {best_point}"
    );
    // Scan bandwidth grows strongly with node size on an aged tree.
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    assert!(
        last.scan_mb_s > 4.0 * first.scan_mb_s,
        "scan bw should grow: {} -> {}",
        first.scan_mb_s,
        last.scan_mb_s
    );
}

#[test]
fn skewed_queries_exploit_the_cache() {
    let rows = experiments::cache_skew(&scale());
    let uniform = &rows[0];
    let hot = rows.last().unwrap();
    assert!(
        hot.hit_rate > uniform.hit_rate,
        "{} vs {}",
        hot.hit_rate,
        uniform.hit_rate
    );
    assert!(
        hot.query_ms < uniform.query_ms,
        "hot {} ms should beat uniform {} ms",
        hot.query_ms,
        uniform.query_ms
    );
}
