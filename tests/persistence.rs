//! Persistence integration: trees survive instance teardown via their
//! superblocks, across repeated open/mutate/persist cycles, with a model
//! checking content at every step.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refined_dam::prelude::*;
use std::collections::BTreeMap;

fn ramdisk() -> SharedDevice {
    SharedDevice::new(Box::new(RamDisk::new(1 << 27, SimDuration(500))))
}

/// One open→mutate→persist cycle; returns nothing, mutates the model.
fn mutate(
    dict: &mut dyn Dictionary,
    model: &mut BTreeMap<u64, Vec<u8>>,
    rng: &mut StdRng,
    ops: usize,
) {
    for _ in 0..ops {
        let k = rng.gen_range(0..500u64);
        let key = refined_dam::kv::key_from_u64(k);
        if rng.gen_bool(0.7) {
            let v = vec![rng.gen::<u8>(); rng.gen_range(4..40)];
            dict.insert(&key, &v).unwrap();
            model.insert(k, v);
        } else {
            dict.delete(&key).unwrap();
            model.remove(&k);
        }
    }
}

fn verify(dict: &mut dyn Dictionary, model: &BTreeMap<u64, Vec<u8>>, label: &str) {
    assert_eq!(dict.len().unwrap(), model.len() as u64, "{label}: count");
    let all = dict.range(&[], &[0xFF; 17]).unwrap();
    let expect: Vec<(Vec<u8>, Vec<u8>)> = model
        .iter()
        .map(|(&k, v)| (refined_dam::kv::key_from_u64(k).to_vec(), v.clone()))
        .collect();
    assert_eq!(all, expect, "{label}: full scan");
}

#[test]
fn btree_survives_reopen_cycles() {
    let dev = ramdisk();
    let cfg = || BTreeConfig::new(1024, 1 << 18);
    let mut model = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(31);
    {
        let mut t = BTree::create(dev.clone(), cfg()).unwrap();
        mutate(&mut t, &mut model, &mut rng, 800);
        t.persist().unwrap();
    }
    for cycle in 0..4 {
        let mut t = BTree::open(dev.clone(), cfg()).unwrap();
        verify(&mut t, &model, &format!("btree cycle {cycle} (pre)"));
        mutate(&mut t, &mut model, &mut rng, 400);
        t.check_invariants().unwrap();
        t.persist().unwrap();
    }
    let mut t = BTree::open(dev, cfg()).unwrap();
    verify(&mut t, &model, "btree final");
}

#[test]
fn betree_survives_reopen_cycles() {
    let dev = ramdisk();
    let cfg = || BeTreeConfig::new(2048, 4, 1 << 18);
    let mut model = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(32);
    {
        let mut t = BeTree::create(dev.clone(), cfg()).unwrap();
        mutate(&mut t, &mut model, &mut rng, 800);
        t.persist().unwrap();
    }
    for cycle in 0..4 {
        let mut t = BeTree::open(dev.clone(), cfg()).unwrap();
        verify(&mut t, &model, &format!("betree cycle {cycle} (pre)"));
        mutate(&mut t, &mut model, &mut rng, 400);
        t.check_invariants().unwrap();
        t.persist().unwrap();
    }
    let mut t = BeTree::open(dev, cfg()).unwrap();
    verify(&mut t, &model, "betree final");
}

#[test]
fn opt_betree_survives_reopen_cycles() {
    let dev = ramdisk();
    let cfg = || OptConfig::new(4, 768, 1 << 18);
    let mut model = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(33);
    {
        let mut t = OptBeTree::create(dev.clone(), cfg()).unwrap();
        mutate(&mut t, &mut model, &mut rng, 800);
        t.persist().unwrap();
    }
    for cycle in 0..4 {
        let mut t = OptBeTree::open(dev.clone(), cfg()).unwrap();
        verify(&mut t, &model, &format!("opt cycle {cycle} (pre)"));
        mutate(&mut t, &mut model, &mut rng, 400);
        t.check_invariants().unwrap();
        t.persist().unwrap();
    }
    let mut t = OptBeTree::open(dev, cfg()).unwrap();
    verify(&mut t, &model, "opt final");
}

#[test]
fn superblock_kinds_do_not_cross_open() {
    // A persisted B-tree must not open as a Bε-tree, and vice versa.
    let dev = ramdisk();
    let mut bt = BTree::create(dev.clone(), BTreeConfig::new(1024, 1 << 16)).unwrap();
    bt.insert(b"k", b"v").unwrap();
    bt.persist().unwrap();
    drop(bt);
    assert!(matches!(
        BeTree::open(dev.clone(), BeTreeConfig::new(1024, 4, 1 << 16)),
        Err(KvError::Corrupt(_))
    ));
    assert!(matches!(
        OptBeTree::open(dev, OptConfig::new(4, 512, 1 << 16)),
        Err(KvError::Corrupt(_))
    ));
}
