//! Crash-consistency sweep: power-cut the device at IO #k for every k and
//! prove that reopening is always safe.
//!
//! The contract under test (see DESIGN.md): these structures update nodes
//! in place and publish a superblock/manifest last, so after a crash at an
//! arbitrary IO the *only* two acceptable outcomes on reopen are
//!
//! 1. a clean, typed `KvError::Corrupt` — no superblock was persisted, or
//!    the crash tore it mid-write and the checksummed frame catches the
//!    damage; never a panic, never a garbage decode; or
//! 2. a successful open that recovers **everything** written before the
//!    crash — possible only when the final superblock write completed.
//!
//! `FaultMode::CrashAfterIos(k)` emulates the power cut: IO #k+1 is torn
//! (writes persist only a prefix) and every later IO fails until "reboot"
//! (clearing the mode).

use refined_dam::prelude::*;
use refined_dam::storage::{FaultInjector, FaultMode, FaultSwitch, RamDisk};

/// Keys preloaded before the simulated crash.
const N: u64 = 600;

fn crash_device() -> (SharedDevice, FaultSwitch) {
    let (inj, switch) = FaultInjector::new(RamDisk::new(1 << 26, SimDuration(100)));
    (SharedDevice::new(Box::new(inj)), switch)
}

fn key(i: u64) -> [u8; 16] {
    refined_dam::kv::key_from_u64(i)
}

fn value(i: u64) -> Vec<u8> {
    vec![(i % 251) as u8; 40 + (i % 17) as usize]
}

/// Insert `N` keys then `sync`; stops at the first storage error (the
/// crash point) and reports whether the full run committed.
fn preload(dict: &mut dyn Dictionary) -> bool {
    for i in 0..N {
        if dict.insert(&key(i), &value(i)).is_err() {
            return false;
        }
    }
    dict.sync().is_ok()
}

fn assert_fully_recovered(dict: &mut dyn Dictionary, label: &str, k: u64) {
    let n = dict
        .len()
        .unwrap_or_else(|e| panic!("{label} k={k}: len after open: {e}"));
    assert_eq!(n, N, "{label} k={k}: key count after recovery");
    for i in (0..N).step_by(53) {
        let got = dict
            .get(&key(i))
            .unwrap_or_else(|e| panic!("{label} k={k}: get({i}) after open: {e}"));
        assert_eq!(got, Some(value(i)), "{label} k={k}: value {i}");
    }
    let all = dict
        .range(&[], &[0xFF; 17])
        .unwrap_or_else(|e| panic!("{label} k={k}: range after open: {e}"));
    assert_eq!(all.len() as u64, N, "{label} k={k}: range length");
}

/// The sweep: measure a clean run's IO count, then for a spread of crash
/// points k re-run against `CrashAfterIos(k)`, reboot, reopen, and check
/// the two-outcome contract.
fn crash_sweep<T, C, O>(label: &str, create: C, open: O)
where
    T: Dictionary,
    C: Fn(SharedDevice) -> T,
    O: Fn(SharedDevice) -> Result<T, KvError>,
{
    // Clean run: how many IOs does preload + sync take?
    let (dev, switch) = crash_device();
    let mut tree = create(dev);
    assert!(preload(&mut tree), "{label}: clean preload failed");
    let total = switch.stats().ios_seen;
    assert!(total > 0, "{label}: preload did no IO");
    drop(tree);

    // Crash points: the edges plus an even spread in between.
    let step = (total / 16).max(1);
    let mut points: Vec<u64> = (0..total).step_by(step as usize).collect();
    points.extend([1, total.saturating_sub(1), total]);
    points.sort_unstable();
    points.dedup();

    let mut corrupt_seen = 0u64;
    let mut recovered_seen = 0u64;
    for &k in &points {
        let (dev, switch) = crash_device();
        switch.set(FaultMode::CrashAfterIos(k));
        let mut tree = create(dev.clone());
        let committed = preload(&mut tree);
        drop(tree);

        // "Reboot": the torn prefix is on disk, faults clear.
        switch.set(FaultMode::None);
        match open(dev) {
            Err(KvError::Corrupt(_)) => {
                corrupt_seen += 1;
                assert!(
                    !committed,
                    "{label} k={k}: sync committed but reopen says corrupt"
                );
            }
            Err(e) => panic!("{label} k={k}: unexpected error kind: {e}"),
            Ok(mut reopened) => {
                recovered_seen += 1;
                // The superblock is written last, so a successful open
                // means the whole preload committed — and then *all* data
                // must be there.
                assert_fully_recovered(&mut reopened, label, k);
            }
        }
    }
    // The sweep must exercise both arms of the contract.
    assert!(
        corrupt_seen > 0,
        "{label}: no crash point detected corruption"
    );
    assert!(
        recovered_seen > 0,
        "{label}: no crash point recovered (k={total} should)"
    );
}

#[test]
fn btree_crash_sweep() {
    let cfg = BTreeConfig::new(4096, 1 << 16);
    crash_sweep(
        "btree",
        |dev| BTree::create(dev, cfg).unwrap(),
        move |dev| BTree::open(dev, cfg),
    );
}

#[test]
fn betree_crash_sweep() {
    let cfg = || BeTreeConfig::new(4096, 4, 1 << 16);
    crash_sweep(
        "betree",
        move |dev| BeTree::create(dev, cfg()).unwrap(),
        move |dev| BeTree::open(dev, cfg()),
    );
}

#[test]
fn opt_betree_crash_sweep() {
    let cfg = || OptConfig::new(4, 1024, 1 << 16);
    crash_sweep(
        "opt-betree",
        move |dev| OptBeTree::create(dev, cfg()).unwrap(),
        move |dev| OptBeTree::open(dev, cfg()),
    );
}

#[test]
fn lsm_crash_sweep() {
    let mut cfg = LsmConfig::new(4096, 1 << 16);
    cfg.block_bytes = 512;
    crash_sweep(
        "lsm",
        move |dev| LsmTree::create(dev, cfg).unwrap(),
        move |dev| LsmTree::open(dev, cfg),
    );
}
