//! Close the loop: record the *actual* IO trace of a dictionary workload,
//! cost it under the affine model and the matching DAM, and check (a) the
//! affine model predicts the simulated wall time, and (b) Lemma 1's factor-2
//! DAM equivalence holds on a real (not synthetic) trace.

use refined_dam::models::conversions;
use refined_dam::prelude::*;
use refined_dam::storage::profiles;
use refined_dam::storage::TracingDevice;

#[test]
fn btree_workload_trace_obeys_affine_model_and_lemma1() {
    let profile = profiles::wd_black_1tb_2011();
    let alpha = profile.alpha_per_byte();
    let setup_s = profile.expected_setup_s();
    let mut tracer = TracingDevice::new(HddDevice::new(profile, 99));

    // Drive a raw IO workload shaped like a B-tree query phase: descents of
    // 3 node reads (64 KiB each) at random offsets, plus periodic leaf
    // writebacks.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4);
    let node = 64 * 1024u64;
    let cap = tracer.capacity_bytes();
    let mut now = SimTime::ZERO;
    let mut buf = vec![0u8; node as usize];
    for i in 0..300 {
        for _ in 0..3 {
            let off = rng.gen_range(0..(cap - node) / node) * node;
            let c = tracer.read(off, &mut buf, now).unwrap();
            now = c.complete;
        }
        if i % 4 == 0 {
            let off = rng.gen_range(0..(cap - node) / node) * node;
            let c = tracer.write(off, &buf, now).unwrap();
            now = c.complete;
        }
    }

    let sizes = tracer.io_sizes();
    assert_eq!(sizes.len(), 300 * 3 + 75);

    // (a) Affine prediction of total time: sum of (1 + alpha*x) * s.
    let affine = Affine::new(alpha);
    let predicted_s: f64 = sizes.iter().map(|&x| affine.io_cost(x)).sum::<f64>() * setup_s;
    let simulated_s = now.as_secs_f64();
    let err = (predicted_s - simulated_s).abs() / simulated_s;
    assert!(
        err < 0.10,
        "affine predicted {predicted_s:.3}s vs simulated {simulated_s:.3}s (err {err:.3})"
    );

    // (b) Lemma 1 on the real trace.
    let report = conversions::lemma1_check(&affine, &sizes);
    assert!(report.holds(), "{report:?}");
}

#[test]
fn tree_issued_ios_are_node_sized() {
    // The whole premise of the node-size experiments: every device IO a
    // B-tree issues is exactly one node. Verify against the recorded trace.
    let profile = profiles::toshiba_dt01aca050();
    let node_bytes = 32 * 1024usize;
    let tracer = TracingDevice::new(HddDevice::new(profile, 5));
    let device = SharedDevice::new(Box::new(tracer));

    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..20_000u64)
        .map(|i| (refined_dam::kv::key_from_u64(i).to_vec(), vec![3u8; 100]))
        .collect();
    let mut tree =
        BTree::bulk_load(device.clone(), BTreeConfig::new(node_bytes, 1 << 19), pairs).unwrap();
    tree.drop_cache().unwrap();
    let mut gen = WorkloadGen::new(WorkloadConfig::uniform(20_000, 8));
    for _ in 0..50 {
        let key = refined_dam::kv::key_from_u64(gen.next_index());
        tree.get(&key).unwrap();
    }
    // Inspect device stats: every IO moved exactly node_bytes.
    let stats = device.stats();
    assert!(stats.reads > 0);
    assert_eq!(
        stats.total_bytes() % node_bytes as u64,
        0,
        "IOs must be whole nodes: {} total bytes",
        stats.total_bytes()
    );
    assert_eq!(stats.total_bytes() / stats.total_ios(), node_bytes as u64);
}
