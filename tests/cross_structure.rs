//! Cross-structure integration: the B-tree, the standard Bε-tree, and the
//! optimized Bε-tree are three implementations of the same dictionary; an
//! identical operation stream must produce identical answers from all of
//! them, on every device type.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use refined_dam::prelude::*;
use refined_dam::storage::profiles;

fn make_trees() -> Vec<(&'static str, Box<dyn Dictionary>)> {
    let hdd = || SharedDevice::new(Box::new(HddDevice::new(profiles::toshiba_dt01aca050(), 7)));
    let ssd = || SharedDevice::new(Box::new(SsdDevice::new(profiles::samsung_860_evo())));
    vec![
        (
            "btree/hdd",
            Box::new(BTree::create(hdd(), BTreeConfig::new(4096, 1 << 18)).unwrap())
                as Box<dyn Dictionary>,
        ),
        (
            "betree/hdd",
            Box::new(BeTree::create(hdd(), BeTreeConfig::new(4096, 4, 1 << 18)).unwrap()),
        ),
        (
            "optbetree/hdd",
            Box::new(OptBeTree::create(hdd(), OptConfig::new(4, 1024, 1 << 18)).unwrap()),
        ),
        (
            "btree/ssd",
            Box::new(BTree::create(ssd(), BTreeConfig::new(8192, 1 << 18)).unwrap()),
        ),
        (
            "betree/ssd",
            Box::new(BeTree::create(ssd(), BeTreeConfig::new(8192, 6, 1 << 18)).unwrap()),
        ),
        (
            "lsm/hdd",
            Box::new(
                LsmTree::create(hdd(), {
                    let mut c = LsmConfig::new(4096, 1 << 18);
                    c.memtable_bytes = 2048;
                    c.block_bytes = 512;
                    c.level_ratio = 4;
                    c
                })
                .unwrap(),
            ),
        ),
    ]
}

#[test]
fn all_structures_agree_on_random_workload() {
    let mut trees = make_trees();
    let mut reference = std::collections::BTreeMap::<u64, Vec<u8>>::new();
    let mut rng = StdRng::seed_from_u64(2024);

    for round in 0..3_000u32 {
        let k = rng.gen_range(0..400u64);
        let key = refined_dam::kv::key_from_u64(k);
        match rng.gen_range(0..10) {
            0..=5 => {
                let value = vec![(round % 251) as u8; rng.gen_range(4..40)];
                for (_, t) in trees.iter_mut() {
                    t.insert(&key, &value).unwrap();
                }
                reference.insert(k, value);
            }
            6..=7 => {
                for (_, t) in trees.iter_mut() {
                    t.delete(&key).unwrap();
                }
                reference.remove(&k);
            }
            8 => {
                let expect = reference.get(&k);
                for (name, t) in trees.iter_mut() {
                    let got = t.get(&key).unwrap();
                    assert_eq!(got.as_ref(), expect, "{name} disagrees at round {round}");
                }
            }
            _ => {
                let hi = k + rng.gen_range(1..30);
                let lo_key = refined_dam::kv::key_from_u64(k);
                let hi_key = refined_dam::kv::key_from_u64(hi);
                let expect: Vec<(Vec<u8>, Vec<u8>)> = reference
                    .range(k..hi)
                    .map(|(&i, v)| (refined_dam::kv::key_from_u64(i).to_vec(), v.clone()))
                    .collect();
                for (name, t) in trees.iter_mut() {
                    let got = t.range(&lo_key, &hi_key).unwrap();
                    assert_eq!(got, expect, "{name} range disagrees at round {round}");
                }
            }
        }
    }

    // Final count agreement.
    for (name, t) in trees.iter_mut() {
        assert_eq!(t.len().unwrap(), reference.len() as u64, "{name} count");
    }
}

#[test]
fn structures_agree_after_syncs_and_bulk_interleaving() {
    let hdd = SharedDevice::new(Box::new(HddDevice::new(profiles::wd_red_6tb_2018(), 3)));
    let mut btree = BTree::create(hdd, BTreeConfig::new(2048, 1 << 17)).unwrap();
    let ssd = SharedDevice::new(Box::new(SsdDevice::new(profiles::samsung_970_pro())));
    let mut betree = BeTree::create(ssd, BeTreeConfig::new(2048, 3, 1 << 17)).unwrap();

    let mut rng = StdRng::seed_from_u64(5);
    for i in 0..2_000u64 {
        let k = refined_dam::kv::key_from_u64(rng.gen_range(0..500));
        let v = vec![(i % 255) as u8; 16];
        btree.insert(&k, &v).unwrap();
        betree.insert(&k, &v).unwrap();
        if i % 97 == 0 {
            btree.sync().unwrap();
            betree.sync().unwrap();
        }
        if i % 401 == 0 {
            btree.drop_cache().unwrap();
            betree.drop_cache().unwrap();
        }
    }
    let a = btree.range(&[], &[0xFF; 17]).unwrap();
    let b = betree.range(&[], &[0xFF; 17]).unwrap();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn write_optimization_hierarchy_holds() {
    // On the same HDD and workload, amortized insert IO time must order:
    // Bε-tree << B-tree (the §3 write-optimization claim, measured).
    // Preload 100k pairs (≈ 12 MiB, far over the 512 KiB cache) so inserts
    // touch cold leaves, as in the §7 protocol.
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..100_000u64)
        .map(|i| {
            (
                refined_dam::kv::key_from_u64(2 * i).to_vec(),
                vec![9u8; 100],
            )
        })
        .collect();
    let cache = 1u64 << 19;
    let run = |mut dict: Box<dyn Dictionary>| -> f64 {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 1_000;
        let mut total = 0.0;
        for _ in 0..n {
            let k = refined_dam::kv::key_from_u64(2 * rng.gen_range(0..100_000u64) + 1);
            dict.insert(&k, &[9u8; 100]).unwrap();
            total += dict.last_op_cost().io_time_ms();
        }
        dict.sync().unwrap();
        total += dict.last_op_cost().io_time_ms();
        total / n as f64
    };
    let hdd = || SharedDevice::new(Box::new(HddDevice::new(profiles::toshiba_dt01aca050(), 9)));
    let btree_ms = run(Box::new(
        BTree::bulk_load(hdd(), BTreeConfig::new(64 * 1024, cache), pairs.clone()).unwrap(),
    ));
    let betree_ms = run(Box::new(
        BeTree::bulk_load(
            hdd(),
            BeTreeConfig::sqrt_fanout(64 * 1024, 116, cache),
            pairs,
        )
        .unwrap(),
    ));
    assert!(
        betree_ms * 3.0 < btree_ms,
        "betree {betree_ms} ms/insert should be far below btree {btree_ms}"
    );
}
