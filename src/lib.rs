//! Root facade for the `refined-dam` workspace.
//!
//! This package exists to host the workspace-level integration tests and the
//! runnable examples; all functionality lives in the `refined-dam` crate and
//! the `dam-*` substrate crates it re-exports.

pub use refined_dam::*;
