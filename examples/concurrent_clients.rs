//! Concurrent clients on a PDAM device (§8): the same vEB-laid-out fat-node
//! tree serves one client and many clients near-optimally, while fixed
//! designs favor one regime or the other.
//!
//! ```sh
//! cargo run --release --example concurrent_clients
//! ```

use refined_dam::prelude::*;
use refined_dam::veb::sim::TreeDesign;

fn main() {
    let p = 8usize;
    println!("PDAM device with P = {p} block-slots per time step, N = 2^30 keys\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "k clients", "PB+vEB", "PB+sorted", "B nodes"
    );
    for k in [1usize, 2, 4, 8] {
        let mut cfg = PdamSimConfig {
            p,
            clients: k,
            block_pivots: 64,
            node_blocks: 8,
            n_items: 1 << 30,
            design: TreeDesign::FatVeb,
            steps: 3000,
            seed: 7,
        };
        let veb = run_pdam_sim(&cfg).throughput;
        cfg.design = TreeDesign::FatSorted;
        let sorted = run_pdam_sim(&cfg).throughput;
        cfg.design = TreeDesign::SmallNodes;
        let small = run_pdam_sim(&cfg).throughput;
        println!("{k:<10} {veb:>12.4} {sorted:>12.4} {small:>12.4}");
    }
    println!("\nthroughput in queries per time step.");
    println!("- at k = 1 the fat vEB node exploits read-ahead: it beats size-B nodes;");
    println!("- sorted pivots scatter their probes, so read-ahead cannot help them;");
    println!("- as k -> P the vEB design converges to the small-node optimum (Lemma 13).");
}
