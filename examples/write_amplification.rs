//! Write amplification (Definition 3): the same random-insert stream costs
//! a B-tree a whole node write per insert (Lemma 3: Θ(B)), while a Bε-tree
//! amortizes flushes over batches (Theorem 4(4): O(B^ε log(N/M))).
//!
//! ```sh
//! cargo run --release --example write_amplification
//! ```

use refined_dam::prelude::*;
use refined_dam::storage::profiles;

const N_KEYS: u64 = 100_000;
const CACHE: u64 = 2 << 20;
const INSERTS: u64 = 2_000;
const NODE: usize = 128 * 1024;

fn preload() -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..N_KEYS)
        .map(|i| {
            (
                refined_dam::kv::key_from_u64(2 * i).to_vec(),
                vec![7u8; 100],
            )
        })
        .collect()
}

fn run_inserts(dict: &mut dyn Dictionary) {
    let mut gen = WorkloadGen::new(WorkloadConfig::uniform(N_KEYS, 5));
    for _ in 0..INSERTS {
        let idx = 2 * gen.next_index() + 1;
        let key = refined_dam::kv::key_from_u64(idx);
        let value = gen.value_for(idx);
        dict.insert(&key, &value).expect("insert failed");
    }
    dict.sync().expect("sync failed");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = profiles::toshiba_dt01aca050();
    let pairs = preload();
    let logical = INSERTS * 116; // 16-byte key + 100-byte value per insert

    let dev = SharedDevice::new(Box::new(HddDevice::new(profile.clone(), 3)));
    let mut btree = BTree::bulk_load(dev, BTreeConfig::new(NODE, CACHE), pairs.clone())?;
    let before = btree.pager().counters().bytes_written;
    run_inserts(&mut btree);
    let btree_written = btree.pager().counters().bytes_written - before;

    let dev = SharedDevice::new(Box::new(HddDevice::new(profile.clone(), 3)));
    let mut betree = BeTree::bulk_load(
        dev,
        BeTreeConfig::sqrt_fanout(NODE, 116, CACHE),
        pairs.clone(),
    )?;
    let before = betree.pager().counters().bytes_written;
    run_inserts(&mut betree);
    let betree_written = betree.pager().counters().bytes_written - before;

    println!("{INSERTS} random inserts of 116 logical bytes each, {NODE}-byte nodes:\n");
    println!(
        "  B-tree : {:>10} bytes written  ->  write amplification {:>8.1}",
        btree_written,
        btree_written as f64 / logical as f64
    );
    println!(
        "  Bε-tree: {:>10} bytes written  ->  write amplification {:>8.1}",
        betree_written,
        betree_written as f64 / logical as f64
    );
    println!(
        "\nLemma 3 predicts Θ(B/entry) = ~{:.0} for the B-tree;",
        NODE as f64 / 116.0
    );
    println!("Theorem 4(4) predicts O(B^ε·log(N/M)) — orders of magnitude less — for the Bε-tree.");
    Ok(())
}
