//! Device profiling: run the §4 microbenchmarks against simulated devices,
//! fit the affine and PDAM models, and print the fitted parameters — the
//! Table 1 / Table 2 methodology end to end.
//!
//! ```sh
//! cargo run --release --example device_profiling
//! ```

use refined_dam::prelude::*;
use refined_dam::profiler::{fig1_thread_counts, table2_io_sizes};
use refined_dam::storage::profiles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- Affine model on a hard disk (§4.2) -----
    let hdd = profiles::wd_black_1tb_2011();
    println!("profiling {} ...", hdd.name);
    let affine_report = profile_affine(
        || Box::new(HddDevice::new(hdd.clone(), 7)),
        &table2_io_sizes(),
        64,
        1,
    )?;
    println!(
        "  fitted s = {:.4} s, t = {:.6} s/4KiB, alpha = {:.4}/4KiB, R^2 = {:.4}",
        affine_report.setup_s, affine_report.t_per_4k, affine_report.alpha_per_4k, affine_report.r2
    );
    println!(
        "  (device ground truth: s = {:.4}, t = {:.6})",
        hdd.expected_setup_s(),
        hdd.expected_seconds_per_byte() * 4096.0
    );

    // ----- PDAM on an SSD (§4.1) -----
    let ssd = profiles::samsung_860_pro();
    println!("\nprofiling {} ...", ssd.name);
    let pdam_report = profile_pdam(
        || Box::new(SsdDevice::new(ssd.clone())),
        &fig1_thread_counts(),
        300,
        64 * 1024,
        1,
    )?;
    println!(
        "  fitted P = {:.1}, saturation = {:.0} MB/s, R^2 = {:.4}",
        pdam_report.p,
        pdam_report.saturation_bytes_s / 1e6,
        pdam_report.r2
    );
    println!(
        "  (device ground truth: P = {:.1}, bus = {:.0} MB/s)",
        ssd.effective_p(64 * 1024),
        ssd.saturated_read_rate() / 1e6
    );
    println!("  thread-scaling series:");
    for (p, t) in &pdam_report.series {
        println!("    p = {p:>2}: {t:.2} s");
    }

    // ----- From fit to tuning -----
    let affine = Affine::new(affine_report.alpha_per_byte);
    let shape = DictShape::new(2e9, 1e4, 116.0, 24.0);
    let tuning = tune_for_affine(&affine, &shape);
    println!("\ntuning for the fitted alpha:");
    println!(
        "  Cor 6  (all ops):     B-tree nodes of {:.0} KiB",
        tuning.btree_all_ops_node_bytes / 1024.0
    );
    println!(
        "  Cor 7  (point ops):   B-tree nodes of {:.0} KiB",
        tuning.btree_point_node_bytes / 1024.0
    );
    println!(
        "  Cor 12 (Bε-tree):     F = {:.0}, nodes of {:.1} MiB, inserts {:.1}x faster",
        tuning.betree_fanout,
        tuning.betree_node_bytes / (1 << 20) as f64,
        tuning.insert_speedup
    );
    Ok(())
}
