//! Node-size tuning: sweep node sizes for a B-tree and a Bε-tree on the
//! same simulated disk and watch the paper's Figure 2 / Figure 3 contrast
//! appear — the B-tree is highly sensitive to node size, the Bε-tree is not.
//!
//! ```sh
//! cargo run --release --example node_size_tuning
//! ```

use refined_dam::prelude::*;
use refined_dam::storage::profiles;

const N_KEYS: u64 = 100_000;
const CACHE: u64 = 2 << 20;
const OPS: u64 = 200;

fn preload() -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..N_KEYS)
        .map(|i| {
            let k = refined_dam::kv::key_from_u64(2 * i).to_vec();
            let v = vec![(i % 251) as u8; 100];
            (k, v)
        })
        .collect()
}

/// Random queries over preloaded keys; returns mean simulated ms/op.
fn measure_queries(dict: &mut dyn Dictionary) -> f64 {
    let mut gen = WorkloadGen::new(WorkloadConfig::uniform(N_KEYS, 99));
    let mut total = 0.0;
    for _ in 0..OPS {
        let key = refined_dam::kv::key_from_u64(2 * gen.next_index());
        dict.get(&key).expect("get failed");
        total += dict.last_op_cost().io_time_ms();
    }
    total / OPS as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = profiles::toshiba_dt01aca050();
    let pairs = preload();
    println!(
        "{:<10} {:>16} {:>16}",
        "node size", "B-tree ms/query", "Bε-tree ms/query"
    );

    let mut node_bytes = 16 * 1024usize;
    while node_bytes <= 4 << 20 {
        let dev_b = SharedDevice::new(Box::new(HddDevice::new(profile.clone(), 1)));
        let mut btree =
            BTree::bulk_load(dev_b, BTreeConfig::new(node_bytes, CACHE), pairs.clone())?;
        let btree_ms = measure_queries(&mut btree);

        let dev_e = SharedDevice::new(Box::new(HddDevice::new(profile.clone(), 1)));
        let mut betree = OptBeTree::bulk_load(
            dev_e,
            OptConfig::balanced(node_bytes, 124, CACHE),
            pairs.clone(),
        )?;
        let betree_ms = measure_queries(&mut betree);

        println!(
            "{:<10} {:>16.2} {:>16.2}",
            format!("{}KiB", node_bytes / 1024),
            btree_ms,
            betree_ms
        );
        node_bytes *= 4;
    }

    println!(
        "\nThe B-tree column grows with node size; the (basement-node) Bε-tree column stays flat —"
    );
    println!("exactly the Figure 2 vs Figure 3 contrast the affine model predicts.");
    Ok(())
}
