//! Quickstart: build a Bε-tree on a simulated hard disk, run a small mixed
//! workload, and inspect the IO costs the simulated clock reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use refined_dam::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated 2018-era WD Red hard disk (Table 2, row 5).
    let profile = refined_dam::storage::profiles::wd_red_6tb_2018();
    println!(
        "device: {} (alpha = {:.2e}/byte)",
        profile.name,
        profile.alpha_per_byte()
    );
    let device = SharedDevice::new(Box::new(HddDevice::new(profile, 42)));

    // A Bε-tree with 1 MiB nodes, F = √B fanout, and 4 MiB of cache.
    let cfg = BeTreeConfig::sqrt_fanout(1 << 20, 116, 4 << 20);
    let mut tree = BeTree::create(device, cfg)?;

    // Insert 50k key-value pairs.
    for i in 0..50_000u64 {
        let key = refined_dam::kv::key_from_u64(i);
        let value = format!("value-{i:08}");
        tree.insert(&key, value.as_bytes())?;
    }
    tree.sync()?;
    let counters = tree.pager().counters();
    println!(
        "preload: {} inserts, {} device IOs, {:.1} MiB written, {:.3} s simulated",
        50_000,
        counters.ios,
        counters.bytes_written as f64 / (1 << 20) as f64,
        counters.io_time_ns as f64 / 1e9,
    );

    // Point queries — some hot, some cold.
    tree.drop_cache()?;
    let key = refined_dam::kv::key_from_u64(31_415);
    let hit = tree.get(&key)?;
    println!(
        "cold get({}) -> {:?} in {} IOs, {:.2} ms simulated",
        31_415,
        hit.as_deref().map(String::from_utf8_lossy),
        tree.last_op_cost().ios,
        tree.last_op_cost().io_time_ms()
    );
    let hit2 = tree.get(&key)?;
    assert_eq!(hit, hit2);
    println!("warm get: {} IOs (cache hit)", tree.last_op_cost().ios);

    // A range query spanning buffered and applied state.
    let lo = refined_dam::kv::key_from_u64(100);
    let hi = refined_dam::kv::key_from_u64(110);
    let range = tree.range(&lo, &hi)?;
    println!("range [100, 110): {} pairs", range.len());
    assert_eq!(range.len(), 10);

    // Deletes are messages too.
    tree.delete(&refined_dam::kv::key_from_u64(31_415))?;
    assert_eq!(tree.get(&refined_dam::kv::key_from_u64(31_415))?, None);
    println!("delete + reread: ok");

    Ok(())
}
