//! LSM-tree quickstart: the LevelDB-style third write-optimized dictionary
//! of the paper's introduction, on a simulated SSD.
//!
//! ```sh
//! cargo run --release --example lsm_quickstart
//! ```

use refined_dam::prelude::*;
use refined_dam::storage::profiles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ssd = profiles::samsung_860_evo();
    println!("device: {}", ssd.name);
    let device = SharedDevice::new(Box::new(SsdDevice::new(ssd)));

    // LevelDB-flavored config scaled to the dataset: 256 KiB SSTables,
    // 4 KiB blocks, ratio 10 — small enough that compaction runs visibly.
    let mut tree = LsmTree::create(device, LsmConfig::new(256 << 10, 4 << 20))?;

    // Insert 200k pairs in pseudo-random order (compactions will run).
    let n = 200_000u64;
    let stride = 982_451_653u64;
    for j in 0..n {
        let i = j.wrapping_mul(stride) % n;
        let key = refined_dam::kv::key_from_u64(i);
        tree.insert(&key, format!("value-{i:08}").as_bytes())?;
    }
    tree.sync()?;

    let counts = tree.level_table_counts();
    println!("levels after load: {counts:?} tables (L0 first)");
    let c = tree.pager().counters();
    println!(
        "write amplification so far: {:.1} ({} MiB written for {} MiB logical)",
        c.bytes_written as f64 / (n * 30) as f64,
        c.bytes_written >> 20,
        (n * 30) >> 20
    );

    // Reads: point and range, through memtable + levels.
    tree.drop_cache()?;
    let probe = refined_dam::kv::key_from_u64(123_456);
    let got = tree.get(&probe)?;
    println!(
        "cold get -> {:?} in {} block IOs ({} bytes)",
        got.as_deref().map(String::from_utf8_lossy),
        tree.last_op_cost().ios,
        tree.last_op_cost().bytes_read
    );

    let lo = refined_dam::kv::key_from_u64(1_000);
    let hi = refined_dam::kv::key_from_u64(1_020);
    let window = tree.range(&lo, &hi)?;
    println!("range [1000, 1020): {} pairs", window.len());
    assert_eq!(window.len(), 20);

    tree.delete(&probe)?;
    assert_eq!(tree.get(&probe)?, None);
    println!("tombstone delete: ok");
    Ok(())
}
